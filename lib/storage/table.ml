(* Rows are sharded into fixed-size chunks so very large tables are not
   one allocation and scans can fan out per-chunk on a domain pool. The
   chunk layout is invisible to readers that go through the iteration
   API: row order is always chunk order.

   A table's chunks live in one of two stores. [Resident] is the plain
   in-memory array-of-chunks. [Spilled] keeps the rows in a chunk file
   on disk and reads them back through a shared buffer pool — the chunk
   API below is then a faulting read path, and sequential iteration
   prefetches upcoming chunks through the pool so disk reads overlap
   the consumer's CPU work. Which store a new table gets is decided at
   construction by the global spill mode: when enabled, *every* table
   built (base data, join outputs, QuerySplit temps) spills, so the
   engine runs fully out-of-core. *)

type store =
  | Resident of Chunk.t array
  | Spilled of { file : Chunk_file.t; bp : Buffer_pool.t }

(* Hash-partition layout carried by tables whose chunks were emitted
   per-partition (parallel join outputs, partition-preserving temps):
   for EVERY key in [part_keys], every row of chunk [i] satisfies
   [Hashtbl.hash (key values in column order) mod parts = tags.(i)].
   Multiple keys arise from join equalities — the build and probe key
   columns hold equal values on every output row, so one hash describes
   both. Purely advisory — readers that ignore it see an ordinary
   table — but a consumer hashing any listed key with the same modulus
   can group chunks by tag instead of re-partitioning row by row. *)
type partitioning = {
  part_keys : (string * string) list list;
  (* value-equivalent ordered (rel, name) key column lists; non-empty *)
  parts : int; (* the partition count / hash modulus *)
  tags : int array; (* per-chunk partition id, in [0, parts) *)
}

type t = {
  name : string;
  schema : Schema.t;
  store : store;
  offsets : int array; (* offsets.(i) = global row id of chunk i's row 0;
                          offsets.(n_chunks) = total rows *)
  chunk_bytes : int array; (* memoized per-chunk byte sizes; -1 = unknown *)
  partitioning : partitioning option;
}

(* Default rows per chunk. Set once at startup (--chunk-rows); ints are
   immediate, so a racy read at worst sees the old default. *)
let default_chunk = ref 65_536

let default_chunk_rows () = !default_chunk
let set_default_chunk_rows n = default_chunk := max 1 n

(* Global chunk layout. [Row] keeps the classic boxed row arrays;
   [Columnar] stores every subsequently built table column-major
   (unboxed int/float arrays, dictionary strings, validity bitsets),
   which the executor's vectorized kernels exploit. Like the chunk-row
   default this is set once at startup (--layout) or toggled around a
   test body; construction reads it once per table, and tables built
   under different settings coexist (the layout is per chunk). *)
type layout = Row | Columnar

let default_layout_ref = ref Row
let default_layout () = !default_layout_ref
let set_default_layout l = default_layout_ref := l
let layout_name = function Row -> "row" | Columnar -> "columnar"

let layout_of_string = function
  | "row" -> Some Row
  | "columnar" | "col" -> Some Columnar
  | _ -> None

(* Global spill mode: a scratch directory and the buffer pool shared by
   every spilled table. Set once at startup (--spill-dir) or toggled
   around a test body; construction reads it once per table. *)
let spill_mode : (string * Buffer_pool.t) option ref = ref None

let set_spill cfg = spill_mode := cfg
let spill_config () = !spill_mode

let check_arity ~name ~schema rows =
  let arity = Schema.arity schema in
  Array.iter
    (fun r ->
      if Array.length r <> arity then
        invalid_arg
          (Printf.sprintf "Table.create %s: row arity %d, schema arity %d" name
             (Array.length r) arity))
    rows

let offsets_of_chunks chunks =
  let nc = Array.length chunks in
  let offsets = Array.make (nc + 1) 0 in
  for i = 0 to nc - 1 do
    offsets.(i + 1) <- offsets.(i) + Chunk.n_rows chunks.(i)
  done;
  offsets

let of_chunk_data_array ~name ~schema (chunks : Chunk.t array) =
  (* every construction path funnels through here, so degenerate inputs
     are normalized in exactly one place: zero-row chunks are dropped
     (keeping offsets strictly increasing) and can therefore never reach
     the chunk-file writer as a zero-length frame *)
  let chunks =
    if Array.exists (fun c -> Chunk.n_rows c = 0) chunks then
      Array.of_list
        (List.filter (fun c -> Chunk.n_rows c > 0) (Array.to_list chunks))
    else chunks
  in
  let offsets = offsets_of_chunks chunks in
  match !spill_mode with
  | Some (dir, bp) when Array.length chunks > 0 ->
      let file, chunk_bytes =
        Chunk_file.write ~dir ~name ~arity:(Schema.arity schema) chunks
      in
      {
        name;
        schema;
        store = Spilled { file; bp };
        offsets;
        chunk_bytes;
        partitioning = None;
      }
  | _ ->
      {
        name;
        schema;
        store = Resident chunks;
        offsets;
        chunk_bytes = Array.make (Array.length chunks) (-1);
        partitioning = None;
      }

let of_chunk_data ~name ~schema chunks =
  of_chunk_data_array ~name ~schema (Array.of_list chunks)

(* Row-chunk construction: each chunk is (re)encoded per the global
   layout default, so flipping [--layout columnar] columnarizes every
   subsequently built table without touching any call site. *)
let encode_chunk rows =
  match !default_layout_ref with
  | Row -> Chunk.of_rows rows
  | Columnar -> Chunk.of_columnar (Columnar.of_rows rows)

let of_chunk_array ~name ~schema chunks =
  of_chunk_data_array ~name ~schema (Array.map encode_chunk chunks)

let create ?chunk_rows ~name ~schema rows =
  check_arity ~name ~schema rows;
  let cr = max 1 (Option.value chunk_rows ~default:!default_chunk) in
  let n = Array.length rows in
  let chunks =
    if n = 0 then [||]
    else if n <= cr then [| rows |]
    else
      Array.init
        ((n + cr - 1) / cr)
        (fun ci ->
          let start = ci * cr in
          Array.sub rows start (min cr (n - start)))
  in
  of_chunk_array ~name ~schema chunks

let of_rows ?chunk_rows ~name ~schema rows =
  create ?chunk_rows ~name ~schema (Array.of_list rows)

let of_chunks ~name ~schema chunks =
  (* pre-chunked construction (per-chunk filter outputs, union of
     tables): batches may be ragged and interleaved with empty ones;
     [of_chunk_array] drops the empties so chunk counts stay
     proportional to data, not to operator fan-out *)
  let chunks = Array.of_list chunks in
  Array.iter (fun c -> check_arity ~name ~schema c) chunks;
  of_chunk_array ~name ~schema chunks

let check_partitioning ~name ~schema ~n_chunks (p : partitioning) =
  if p.parts < 1 then
    invalid_arg (Printf.sprintf "Table %s: partition count %d" name p.parts);
  if p.part_keys = [] || List.mem [] p.part_keys then
    invalid_arg (Printf.sprintf "Table %s: empty partition key" name);
  List.iter
    (List.iter (fun (rel, col) ->
         if not (Schema.mem schema ~rel ~name:col) then
           invalid_arg
             (Printf.sprintf "Table %s: partition key %s.%s not in schema"
                name rel col)))
    p.part_keys;
  if Array.length p.tags <> n_chunks then
    invalid_arg
      (Printf.sprintf "Table %s: %d partition tags for %d chunks" name
         (Array.length p.tags) n_chunks);
  Array.iter
    (fun tag ->
      if tag < 0 || tag >= p.parts then
        invalid_arg
          (Printf.sprintf "Table %s: partition tag %d outside [0,%d)" name tag
             p.parts))
    p.tags

let of_tagged_chunks ~name ~schema ~part_keys ~parts tagged =
  (* per-partition operator output: each batch carries the partition id
     its rows hashed into. Empty batches are dropped here, tags in sync,
     so [of_chunk_array] below sees no empties and chunk/tag indices
     stay aligned. *)
  let kept = List.filter (fun (_, c) -> Array.length c > 0) tagged in
  List.iter (fun (_, c) -> check_arity ~name ~schema c) kept;
  let t =
    of_chunk_array ~name ~schema (Array.of_list (List.map snd kept))
  in
  let p =
    { part_keys; parts; tags = Array.of_list (List.map fst kept) }
  in
  check_partitioning ~name ~schema ~n_chunks:(Array.length t.offsets - 1) p;
  { t with partitioning = Some p }

let partitioning t = t.partitioning
let without_partitioning t = { t with partitioning = None }

let copy_partitioning ~from t =
  (* re-attach [from]'s layout to a chunk-for-chunk derivative (a
     projection): valid only when the chunk structure is unchanged and
     every key column survives in the new schema; silently a no-op
     otherwise, since the layout is advisory *)
  match from.partitioning with
  | None -> t
  | Some p ->
      if
        Array.length t.offsets = Array.length from.offsets
        && Array.length p.tags = Array.length t.offsets - 1
      then
        (* keep only the equivalent keys whose columns all survive in
           the new schema; no surviving key means no layout *)
        match
          List.filter
            (List.for_all (fun (rel, col) ->
                 Schema.mem t.schema ~rel ~name:col))
            p.part_keys
        with
        | [] -> t
        | keys -> { t with partitioning = Some { p with part_keys = keys } }
      else t

let n_chunks t = Array.length t.offsets - 1
let n_rows t = t.offsets.(n_chunks t)
let spilled t = match t.store with Spilled _ -> true | Resident _ -> false

let chunk_data t i =
  match t.store with
  | Resident chunks -> chunks.(i)
  | Spilled { file; bp } -> Buffer_pool.get bp file i

(* Row view of chunk [i]; decodes a columnar chunk, so layout-aware
   consumers should prefer [chunk_data] / [iter_chunk_data]. *)
let chunk t i = Chunk.rows (chunk_data t i)

let chunk_offset t i = t.offsets.(i)
let chunk_list t = List.init (n_chunks t) (chunk t)

(* Sequential chunk walk: the shared scan loop of iter/iteri/fold. On a
   spilled table each chunk is pinned while the consumer runs (pins
   release on exception, so cancellation mid-scan leaks nothing) and the
   next chunks are prefetched through the pool's I/O workers so disk
   reads overlap the consumer's CPU work. *)
let scan_chunk_data t f =
  match t.store with
  | Resident chunks -> Array.iteri f chunks
  | Spilled { file; bp } ->
      let n = n_chunks t in
      let depth = Buffer_pool.prefetch_depth bp in
      for ci = 0 to n - 1 do
        if depth > 0 && ci + 1 < n then
          Buffer_pool.prefetch bp file
            (List.init (min depth (n - ci - 1)) (fun k -> ci + 1 + k));
        Buffer_pool.with_pin bp file ci (fun chunk -> f ci chunk)
      done

let iter_chunk_data f t = scan_chunk_data t f
let scan_chunks t f = scan_chunk_data t (fun ci c -> f ci (Chunk.rows c))
let iter_chunks f t = scan_chunks t f
let iter f t = scan_chunks t (fun _ rows -> Array.iter f rows)

let iteri f t =
  scan_chunks t (fun ci rows ->
      let base = t.offsets.(ci) in
      Array.iteri (fun i row -> f (base + i) row) rows)

let fold f init t =
  let acc = ref init in
  scan_chunks t (fun _ rows -> acc := Array.fold_left f !acc rows);
  !acc

let to_seq t =
  Seq.concat_map (fun ci -> Array.to_seq (chunk t ci))
    (Seq.init (n_chunks t) Fun.id)

let to_rows t =
  match n_chunks t with
  | 0 -> [||]
  | 1 -> chunk t 0
  | _ -> Array.concat (chunk_list t)

(* chunk holding global row [i]: binary search over the offset table *)
let chunk_of_row t i =
  if i < 0 || i >= n_rows t then
    invalid_arg (Printf.sprintf "Table.row %s: index %d out of %d" t.name i (n_rows t));
  let lo = ref 0 and hi = ref (n_chunks t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.offsets.(mid) <= i then lo := mid else hi := mid - 1
  done;
  !lo

let row t i =
  let ci = chunk_of_row t i in
  Chunk.row (chunk_data t ci) (i - t.offsets.(ci))

let get t ~row:r ~col = (row t r).(col)

let column_values t col =
  let out = Array.make (n_rows t) Value.Null in
  iteri (fun i r -> out.(i) <- r.(col)) t;
  out

let chunk_byte_size t i =
  let b = t.chunk_bytes.(i) in
  if b >= 0 then b
  else begin
    (* only a Resident chunk can be unmemoized: the chunk-file writer
       computes logical sizes during its serialization walk, so spilled
       tables never fault for accounting *)
    let b = Chunk.byte_size (chunk_data t i) in
    (* memo write is racy across domains but idempotent: both sides
       compute the same immediate int *)
    t.chunk_bytes.(i) <- b;
    b
  end

let byte_size t =
  let total = ref 0 in
  for i = 0 to n_chunks t - 1 do
    total := !total + chunk_byte_size t i
  done;
  !total

(* [rename]/[reschema] change the column qualifiers, so a partition key
   expressed as (rel, name) pairs no longer resolves — the layout is
   dropped. [with_name] keeps the schema (temps keep alias qualifiers)
   and therefore the layout. *)
let rename t name =
  { t with name; schema = Schema.requalify name t.schema; partitioning = None }

let with_name t name = { t with name }

let reschema ~name ~schema t =
  if Schema.arity schema <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.reschema %s: arity %d, had %d" name
         (Schema.arity schema) (Schema.arity t.schema));
  { t with name; schema; partitioning = None }

(* Canonical multiset digest: rows rendered with columns in sorted-id
   order, then sorted — invariant under row and column order, so
   sequential, pooled, served and out-of-core runs of the same query
   compare byte-for-byte (chunk-file serialization round-trips values
   exactly, floats through their IEEE bits). *)
let digest t =
  let order =
    Array.to_list t.schema
    |> List.mapi (fun i c -> (Schema.column_id c, i))
    |> List.sort compare
  in
  let rows =
    fold
      (fun acc row ->
        String.concat "\x00"
          (List.map (fun (_, i) -> Value.to_string row.(i)) order)
        :: acc)
      [] t
    |> List.sort compare
  in
  let header = String.concat "\x00" (List.map fst order) in
  Digest.to_hex (Digest.string (String.concat "\x01" (header :: rows)))

let pp_sample ?(limit = 10) fmt t =
  Format.fprintf fmt "table %s (%d rows): %a@." t.name (n_rows t) Schema.pp t.schema;
  let shown = min limit (n_rows t) in
  for i = 0 to shown - 1 do
    let cells = Array.to_list (Array.map Value.to_string (row t i)) in
    Format.fprintf fmt "  | %s@." (String.concat " | " cells)
  done;
  if n_rows t > shown then Format.fprintf fmt "  ... (%d more)@." (n_rows t - shown)
