type t = {
  name : string;
  schema : Schema.t;
  rows : Value.t array array;
}

let create ~name ~schema rows =
  let arity = Schema.arity schema in
  Array.iter
    (fun r ->
      if Array.length r <> arity then
        invalid_arg
          (Printf.sprintf "Table.create %s: row arity %d, schema arity %d" name
             (Array.length r) arity))
    rows;
  { name; schema; rows }

let of_rows ~name ~schema rows = create ~name ~schema (Array.of_list rows)

let n_rows t = Array.length t.rows

let column_values t col = Array.map (fun r -> r.(col)) t.rows

let get t ~row ~col = t.rows.(row).(col)

let byte_size t =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun a v -> a + Value.byte_size v) acc row)
    0 t.rows

let rename t name = { t with name; schema = Schema.requalify name t.schema }

let pp_sample ?(limit = 10) fmt t =
  Format.fprintf fmt "table %s (%d rows): %a@." t.name (n_rows t) Schema.pp t.schema;
  let shown = min limit (n_rows t) in
  for i = 0 to shown - 1 do
    let cells = Array.to_list (Array.map Value.to_string t.rows.(i)) in
    Format.fprintf fmt "  | %s@." (String.concat " | " cells)
  done;
  if n_rows t > shown then Format.fprintf fmt "  ... (%d more)@." (n_rows t - shown)
