(** Tables sharded into fixed-size chunks — row-major or column-major
    per the global {!layout} — resident in memory or spilled to disk.

    Tables are immutable after construction; the engine materializes
    intermediate results as fresh tables. Rows live in chunks of at most
    [chunk_rows] rows ({!default_chunk_rows} unless overridden per
    table), so very large tables are never one allocation and scans,
    filters and aggregations can run per-chunk on a domain pool. Row
    order is chunk order: iterating chunks in index order visits exactly
    the row order [create] was given. Under the [Columnar] layout each
    chunk is stored one unboxed array per column ({!Columnar.t});
    the row-oriented API below still works (it decodes on access), while
    layout-aware consumers use {!chunk_data} / {!iter_chunk_data} to
    reach the columns directly.

    With spill mode enabled ({!set_spill}), every newly built table
    writes its chunks to a {!Chunk_file} and the chunk API becomes a
    faulting read path through the shared {!Buffer_pool}: {!chunk} and
    {!row} fault frames in on demand, and {!iter}/{!iteri}/{!fold} pin
    the chunk being consumed while prefetching the next ones through
    the pool's I/O workers. Results are value-identical either way —
    {!digest} is invariant across resident and spilled execution. *)

type store
(** Where a table's chunks live: resident in memory, or in a chunk file
    read through a buffer pool. Not exposed — all access goes through
    the chunk API below, which faults as needed. *)

type partitioning = {
  part_keys : (string * string) list list;
      (** value-equivalent ordered (rel, name) hash-key column lists —
          order matters within a key, the hash is over the key values in
          that order. Multiple keys arise from join equalities: the
          build and probe key columns hold equal values on every output
          row, so one hash describes both *)
  parts : int;  (** partition count (the hash modulus) *)
  tags : int array;  (** per-chunk partition id, in [\[0, parts)] *)
}
(** Advisory hash-partition layout: for every key in [part_keys], every
    row of chunk [i] satisfies [Hashtbl.hash key mod parts = tags.(i)]
    for the key values read off that key's columns in order. Carried by
    per-partition operator outputs ({!of_tagged_chunks}) so a later
    partitioned join over any listed key and the same modulus can group
    chunks by tag instead of re-hashing rows. *)

type t = private {
  name : string;
  schema : Schema.t;
  store : store;
      (** Read through {!chunk} / {!iter} / {!row}; direct [.rows]-style
          field access outside [lib/storage] is rejected by the lint. *)
  offsets : int array;
      (** [offsets.(i)] is the global row id of the first row of chunk
          [i]; [offsets.(n_chunks)] is the row count. Strictly
          increasing: construction drops zero-row chunks, so no offset
          can map into an empty frame. *)
  chunk_bytes : int array;  (** memoized per-chunk byte sizes, -1 = unknown *)
  partitioning : partitioning option;
      (** advisory partition layout; read through {!partitioning} *)
}

val default_chunk_rows : unit -> int
(** Rows per chunk for tables built without [?chunk_rows] (default 64k). *)

val set_default_chunk_rows : int -> unit
(** Set the global default (clamped to >= 1). Intended to be called once
    at startup (the [--chunk-rows] flag), before tables are built. *)

type layout = Row | Columnar
(** Chunk layout for newly built tables. [Row]: boxed row arrays
    (the classic representation). [Columnar]: column-major chunks with
    unboxed scalar arrays, dictionary-encoded strings and validity
    bitsets, exploited by the executor's vectorized kernels. Results
    are value-identical either way ({!digest} is layout-invariant). *)

val default_layout : unit -> layout

val set_default_layout : layout -> unit
(** Set the global layout for subsequently built tables (the [--layout]
    flag). Tables built under different settings coexist — the layout
    is recorded per chunk, including through spill files. *)

val layout_name : layout -> string

val layout_of_string : string -> layout option
(** ["row"] / ["columnar"] (or ["col"]); [None] otherwise. *)

val set_spill : (string * Buffer_pool.t) option -> unit
(** [set_spill (Some (dir, pool))] turns on out-of-core mode: every
    table built from now on spills its chunks to a file under [dir] and
    reads them back through [pool]. [set_spill None] turns it off.
    Already-built tables keep their store either way. Intended to be
    set once at startup ([--spill-dir]); tests toggling it around a
    body must restore the previous config ({!spill_config}). *)

val spill_config : unit -> (string * Buffer_pool.t) option
(** The current spill mode (for save/restore and for attaching I/O
    pools or tracers to the active buffer pool). *)

val spilled : t -> bool
(** Whether this table's chunks live on disk. *)

val create : ?chunk_rows:int -> name:string -> schema:Schema.t ->
  Value.t array array -> t
(** Rows must match the schema arity; they are split into chunks of
    [chunk_rows] (last chunk may be short). *)

val of_rows : ?chunk_rows:int -> name:string -> schema:Schema.t ->
  Value.t array list -> t

val of_chunks : name:string -> schema:Schema.t -> Value.t array array list -> t
(** Concatenation of pre-chunked row batches, in order. Batches may be
    ragged (per-chunk filter outputs) and interleaved with empty ones;
    empty batches are dropped, so the resulting offsets are strictly
    increasing. The batch arrays are shared, not copied (unless spill
    mode rewrites them to disk). *)

val of_tagged_chunks : name:string -> schema:Schema.t ->
  part_keys:(string * string) list list -> parts:int ->
  (int * Value.t array array) list -> t
(** Per-partition construction: each batch carries the partition id its
    rows hashed into ([Hashtbl.hash key mod parts] over every key in
    [part_keys] — the caller's obligation). Empty batches are dropped
    with their tags, so chunk and tag indices stay aligned. Raises
    [Invalid_argument] on an empty or unresolvable key, [parts < 1], or
    a tag outside [\[0, parts)]. *)

val partitioning : t -> partitioning option
(** The advisory partition layout, if this table was built
    per-partition and nothing invalidated the key since. *)

val without_partitioning : t -> t
(** Same chunks with the layout dropped — forces consumers back onto
    the row-hashing path (layout-invariance testing). *)

val copy_partitioning : from:t -> t -> t
(** Re-attach [from]'s layout to a chunk-for-chunk derivative of it
    (e.g. a column projection). Keys whose columns are gone from [t]'s
    schema are dropped; a no-op when [from] has no layout, when the
    chunk counts differ, or when no key survives — the layout is
    advisory, so an inapplicable copy is dropped rather than an
    error. *)

val n_rows : t -> int

val n_chunks : t -> int

val chunk : t -> int -> Value.t array array
(** The rows of one chunk (shared, do not mutate). On a spilled table
    this faults the frame in through the buffer pool. On a columnar
    chunk this decodes — layout-aware consumers should use
    {!chunk_data}. *)

val chunk_data : t -> int -> Chunk.t
(** One chunk in its stored layout (shared, do not mutate). Faults
    through the buffer pool on a spilled table. *)

val of_chunk_data : name:string -> schema:Schema.t -> Chunk.t list -> t
(** Concatenation of pre-built chunks in whichever layout each already
    has — the constructor for operator outputs that want to preserve
    their input's layout (a columnar filter keeps its gathered columns
    columnar) rather than re-encode per the global default. Empty
    chunks are dropped; chunk arity is the caller's obligation. *)

val iter_chunk_data : (int -> Chunk.t -> unit) -> t -> unit
(** {!iter_chunks} without the row decode: visit every chunk in its
    stored layout. Same pinning and prefetching behaviour. *)

val chunk_offset : t -> int -> int
(** Global row id of the first row of the given chunk. *)

val chunk_list : t -> Value.t array array list
(** All chunks in row order (shared arrays). *)

val row : t -> int -> Value.t array
(** Random access by global row id (binary search over the chunk offsets,
    O(log n_chunks)). Index row ids ({!Index.lookup}) are global ids. *)

val get : t -> row:int -> col:int -> Value.t

val iter_chunks : (int -> Value.t array array -> unit) -> t -> unit
(** Visit every chunk in index order with its chunk index. On a spilled
    table each chunk is pinned while [f] runs (released on exception)
    and upcoming chunks are prefetched asynchronously — the building
    block for sequential operators that consume whole chunks. *)

val iter : (Value.t array -> unit) -> t -> unit
(** Visit every row in row order. On a spilled table the chunk being
    consumed is pinned (released even if [f] raises) and upcoming
    chunks are prefetched asynchronously. *)

val iteri : (int -> Value.t array -> unit) -> t -> unit
(** [iter] with the global row id. *)

val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a

val to_seq : t -> Value.t array Seq.t

val to_rows : t -> Value.t array array
(** Flat copy of all rows (the single chunk itself when there is only
    one). For API boundaries that need a plain array; prefer the
    iterators elsewhere. *)

val column_values : t -> int -> Value.t array
(** All values of the column at the given position (in row order). *)

val byte_size : t -> int
(** Approximate memory footprint of the row data (Table 4 accounting).
    Memoized per chunk: the first call walks each chunk's cells, later
    calls are O(n_chunks). *)

val chunk_byte_size : t -> int -> int
(** Memoized byte size of one chunk. *)

val rename : t -> string -> t
(** New table sharing chunks (and byte-size memo), with the given name
    and columns requalified to it. Requalifying invalidates a
    (rel, name) partition key, so any partition layout is dropped. *)

val with_name : t -> string -> t
(** New table sharing chunks, renamed without requalifying the schema
    (temp materialization keeps alias-qualified columns). The partition
    layout, whose key still resolves, is kept. *)

val reschema : name:string -> schema:Schema.t -> t -> t
(** New table sharing chunks under a same-arity replacement schema
    (column flattening). Drops any partition layout — the key columns
    no longer resolve under the new qualifiers. *)

val digest : t -> string
(** Canonical multiset digest (hex MD5): rows rendered with columns in
    sorted-id order, then sorted, so the digest is invariant under row
    and column order. Two tables holding the same multiset of rows over
    the same column ids digest identically regardless of how they were
    produced (sequential, pooled, or served execution). *)

val pp_sample : ?limit:int -> Format.formatter -> t -> unit
(** Debug/demo printer: schema plus the first [limit] rows (default 10). *)
