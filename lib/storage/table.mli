(** In-memory row-store tables, sharded into fixed-size chunks.

    Tables are immutable after construction; the engine materializes
    intermediate results as fresh tables. Rows live in chunks of at most
    [chunk_rows] rows ({!default_chunk_rows} unless overridden per
    table), so very large tables are never one allocation and scans,
    filters and aggregations can run per-chunk on a domain pool. Row
    order is chunk order: iterating chunks in index order visits exactly
    the row order [create] was given. *)

type t = private {
  name : string;
  schema : Schema.t;
  chunks : Value.t array array array;
      (** Read through {!chunk} / {!iter} / {!row}; direct [.rows]-style
          field access outside [lib/storage] is rejected by the lint. *)
  offsets : int array;
      (** [offsets.(i)] is the global row id of the first row of chunk
          [i]; [offsets.(n_chunks)] is the row count. *)
  chunk_bytes : int array;  (** memoized per-chunk byte sizes, -1 = unknown *)
}

val default_chunk_rows : unit -> int
(** Rows per chunk for tables built without [?chunk_rows] (default 64k). *)

val set_default_chunk_rows : int -> unit
(** Set the global default (clamped to >= 1). Intended to be called once
    at startup (the [--chunk-rows] flag), before tables are built. *)

val create : ?chunk_rows:int -> name:string -> schema:Schema.t ->
  Value.t array array -> t
(** Rows must match the schema arity; they are split into chunks of
    [chunk_rows] (last chunk may be short). *)

val of_rows : ?chunk_rows:int -> name:string -> schema:Schema.t ->
  Value.t array list -> t

val of_chunks : name:string -> schema:Schema.t -> Value.t array array list -> t
(** Concatenation of pre-chunked row batches, in order. Batches may be
    ragged (per-chunk filter outputs); empty batches are dropped. The
    batch arrays are shared, not copied. *)

val n_rows : t -> int

val n_chunks : t -> int

val chunk : t -> int -> Value.t array array
(** The rows of one chunk (shared, do not mutate). *)

val chunk_offset : t -> int -> int
(** Global row id of the first row of the given chunk. *)

val chunk_list : t -> Value.t array array list
(** All chunks in row order (shared arrays). *)

val row : t -> int -> Value.t array
(** Random access by global row id (binary search over the chunk offsets,
    O(log n_chunks)). Index row ids ({!Index.lookup}) are global ids. *)

val get : t -> row:int -> col:int -> Value.t

val iter : (Value.t array -> unit) -> t -> unit
(** Visit every row in row order. *)

val iteri : (int -> Value.t array -> unit) -> t -> unit
(** [iter] with the global row id. *)

val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a

val to_seq : t -> Value.t array Seq.t

val to_rows : t -> Value.t array array
(** Flat copy of all rows (the single chunk itself when there is only
    one). For API boundaries that need a plain array; prefer the
    iterators elsewhere. *)

val column_values : t -> int -> Value.t array
(** All values of the column at the given position (in row order). *)

val byte_size : t -> int
(** Approximate memory footprint of the row data (Table 4 accounting).
    Memoized per chunk: the first call walks each chunk's cells, later
    calls are O(n_chunks). *)

val chunk_byte_size : t -> int -> int
(** Memoized byte size of one chunk. *)

val rename : t -> string -> t
(** New table sharing chunks (and byte-size memo), with the given name
    and columns requalified to it. *)

val with_name : t -> string -> t
(** New table sharing chunks, renamed without requalifying the schema
    (temp materialization keeps alias-qualified columns). *)

val reschema : name:string -> schema:Schema.t -> t -> t
(** New table sharing chunks under a same-arity replacement schema
    (column flattening). *)

val digest : t -> string
(** Canonical multiset digest (hex MD5): rows rendered with columns in
    sorted-id order, then sorted, so the digest is invariant under row
    and column order. Two tables holding the same multiset of rows over
    the same column ids digest identically regardless of how they were
    produced (sequential, pooled, or served execution). *)

val pp_sample : ?limit:int -> Format.formatter -> t -> unit
(** Debug/demo printer: schema plus the first [limit] rows (default 10). *)
