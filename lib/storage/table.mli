(** In-memory row-store tables.

    Tables are immutable after construction; the engine materializes
    intermediate results as fresh tables. *)

type t = private {
  name : string;
  schema : Schema.t;
  rows : Value.t array array;
}

val create : name:string -> schema:Schema.t -> Value.t array array -> t
(** Rows must match the schema arity. *)

val of_rows : name:string -> schema:Schema.t -> Value.t array list -> t

val n_rows : t -> int

val column_values : t -> int -> Value.t array
(** All values of the column at the given position (in row order). *)

val get : t -> row:int -> col:int -> Value.t

val byte_size : t -> int
(** Approximate memory footprint of the row data (Table 4 accounting). *)

val rename : t -> string -> t
(** New table sharing rows, with the given name and columns requalified to
    it. *)

val pp_sample : ?limit:int -> Format.formatter -> t -> unit
(** Debug/demo printer: schema plus the first [limit] rows (default 10). *)
