(** The database catalog: tables, key constraints, and index configuration.

    Primary-key / foreign-key metadata is what drives the paper's RCenter
    subquery-generation strategy (§4.1): a join predicate whose sides are an
    FK column and the PK it references is a non-expanding join, and the
    directed join graph is oriented by exactly this metadata. *)

type fk = {
  from_table : string;
  from_column : string;
  to_table : string;
  to_column : string;
}

type index_config = Pk_only | Pk_fk
(** The two index states evaluated in the paper (Fig. 11): B+Trees on
    primary keys only, or on both primary- and foreign-key columns. *)

type t

val create : unit -> t

val add_table : t -> ?pk:string -> Table.t -> unit
(** Registers a table, optionally declaring its primary-key column.
    Raises [Invalid_argument] on duplicate table names. *)

val add_fk : t -> from_table:string -> from_column:string -> to_table:string ->
  to_column:string -> unit
(** Declares that [from_table.from_column] references
    [to_table.to_column]. Both tables must already be registered. *)

val table : t -> string -> Table.t
(** Raises [Not_found]-style [Invalid_argument] on unknown names. *)

val mem_table : t -> string -> bool

val tables : t -> Table.t list

val pk : t -> string -> string option
(** Primary-key column of a table, if declared. *)

val fks : t -> fk list

val fk_between : t -> from_table:string -> to_table:string -> fk option
(** The FK constraint from one table to another, if any (first match). *)

val references : t -> string -> fk list
(** All FKs declared *on* the given table (outgoing references). *)

val referenced_by : t -> string -> fk list
(** All FKs pointing *to* the given table. *)

val build_indexes : t -> index_config -> unit
(** (Re)builds the B+Tree set for the requested configuration, discarding
    any previous indexes. PK indexes are unique. *)

val index_config : t -> index_config option
(** Currently built configuration, if [build_indexes] has run. *)

val find_index : t -> table:string -> column:string -> Index.t option
(** The built index over the column, if the current configuration has one.
    Also answers for temp tables registered via [register_temp_index]. *)

val register_temp_index : t -> Index.t -> unit
(** Used by tests/extensions to expose an ad-hoc index to the optimizer. *)

val total_bytes : t -> int
(** Sum of table byte sizes, for reporting. *)
