type column = { rel : string; name : string; ty : Value.ty }

type t = column array

let column ~rel ~name ~ty = { rel; name; ty }

let make rel cols =
  Array.of_list (List.map (fun (name, ty) -> { rel; name; ty }) cols)

let arity = Array.length

let concat = Array.append

let requalify alias s = Array.map (fun c -> { c with rel = alias }) s

let find s ~rel ~name =
  let found = ref None in
  Array.iteri
    (fun i c -> if !found = None && c.rel = rel && c.name = name then found := Some i)
    s;
  !found

let find_exn s ~rel ~name =
  match find s ~rel ~name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Schema.find_exn: no column %s.%s" rel name)

let find_by_name s name =
  let hits = ref [] in
  Array.iteri (fun i c -> if c.name = name then hits := i :: !hits) s;
  match !hits with [ i ] -> Some i | _ -> None

let mem s ~rel ~name = find s ~rel ~name <> None

let column_id c = c.rel ^ "." ^ c.name

let to_string s =
  s |> Array.to_list
  |> List.map (fun c -> Printf.sprintf "%s:%s" (column_id c) (Value.ty_to_string c.ty))
  |> String.concat ", "

let pp fmt s = Format.pp_print_string fmt (to_string s)

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (x : column) y -> x = y) a b
