(* A classic B+Tree with node fan-out [order]. Nodes hold their keys in
   sorted dynamic arrays (copied on insert); splits propagate upward and the
   root splits grow the tree. Leaves are chained for range scans. *)

let order = 32 (* maximum number of keys in a node *)

type node = Leaf of leaf | Internal of internal

and leaf = {
  mutable lkeys : Value.t array;
  mutable lvals : int list array; (* row-id postings, most recent first *)
  mutable next : leaf option;
}

and internal = {
  mutable ikeys : Value.t array; (* separators: child i holds keys < ikeys.(i) *)
  mutable children : node array;
}

type t = {
  mutable root : node;
  mutable n_keys : int;
  mutable n_entries : int;
}

let create () =
  { root = Leaf { lkeys = [||]; lvals = [||]; next = None }; n_keys = 0; n_entries = 0 }

(* Position of the first element >= key (insertion point). *)
let lower_bound keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare keys.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Position of the first element > key: the child to descend into. *)
let upper_bound keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare keys.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert arr pos x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 pos;
  Array.blit arr pos out (pos + 1) (n - pos);
  out

(* Returns [Some (separator, right_sibling)] when the node split. *)
let rec insert_node t node key row =
  match node with
  | Leaf l -> (
      let pos = lower_bound l.lkeys key in
      if pos < Array.length l.lkeys && Value.equal l.lkeys.(pos) key then (
        l.lvals.(pos) <- row :: l.lvals.(pos);
        t.n_entries <- t.n_entries + 1;
        None)
      else (
        l.lkeys <- array_insert l.lkeys pos key;
        l.lvals <- array_insert l.lvals pos [ row ];
        t.n_keys <- t.n_keys + 1;
        t.n_entries <- t.n_entries + 1;
        if Array.length l.lkeys <= order then None
        else
          let mid = Array.length l.lkeys / 2 in
          let rkeys = Array.sub l.lkeys mid (Array.length l.lkeys - mid) in
          let rvals = Array.sub l.lvals mid (Array.length l.lvals - mid) in
          let right = { lkeys = rkeys; lvals = rvals; next = l.next } in
          l.lkeys <- Array.sub l.lkeys 0 mid;
          l.lvals <- Array.sub l.lvals 0 mid;
          l.next <- Some right;
          Some (rkeys.(0), Leaf right)))
  | Internal n -> (
      let child_idx = upper_bound n.ikeys key in
      match insert_node t n.children.(child_idx) key row with
      | None -> None
      | Some (sep, right) ->
          n.ikeys <- array_insert n.ikeys child_idx sep;
          n.children <- array_insert n.children (child_idx + 1) right;
          if Array.length n.ikeys <= order then None
          else
            (* Push up the middle separator; it does not stay in either half. *)
            let mid = Array.length n.ikeys / 2 in
            let up = n.ikeys.(mid) in
            let rkeys = Array.sub n.ikeys (mid + 1) (Array.length n.ikeys - mid - 1) in
            let rchildren =
              Array.sub n.children (mid + 1) (Array.length n.children - mid - 1)
            in
            let right_node = { ikeys = rkeys; children = rchildren } in
            n.ikeys <- Array.sub n.ikeys 0 mid;
            n.children <- Array.sub n.children 0 (mid + 1);
            Some (up, Internal right_node))

let insert t key row =
  if not (Value.is_null key) then
    match insert_node t t.root key row with
    | None -> ()
    | Some (sep, right) ->
        t.root <- Internal { ikeys = [| sep |]; children = [| t.root; right |] }

let array_remove arr pos =
  let n = Array.length arr in
  Array.append (Array.sub arr 0 pos) (Array.sub arr (pos + 1) (n - pos - 1))

let min_keys = order / 2

(* --- deletion with rebalancing ------------------------------------- *)

let leaf_underflow l = Array.length l.lkeys < min_keys

let internal_underflow n = Array.length n.ikeys < min_keys

(* Fix the child at [idx] of internal node [n] after it underflowed:
   borrow one entry from a sibling with spare capacity, or merge with a
   sibling. *)
let rebalance (n : internal) idx =
  let borrow_from_left li =
    match (n.children.(li), n.children.(idx)) with
    | Leaf left, Leaf right ->
        let last = Array.length left.lkeys - 1 in
        let k = left.lkeys.(last) and v = left.lvals.(last) in
        left.lkeys <- Array.sub left.lkeys 0 last;
        left.lvals <- Array.sub left.lvals 0 last;
        right.lkeys <- array_insert right.lkeys 0 k;
        right.lvals <- array_insert right.lvals 0 v;
        n.ikeys.(li) <- k
    | Internal left, Internal right ->
        let last = Array.length left.ikeys - 1 in
        (* rotate through the separator *)
        right.ikeys <- array_insert right.ikeys 0 n.ikeys.(li);
        right.children <-
          array_insert right.children 0 left.children.(Array.length left.children - 1);
        n.ikeys.(li) <- left.ikeys.(last);
        left.ikeys <- Array.sub left.ikeys 0 last;
        left.children <- Array.sub left.children 0 (Array.length left.children - 1)
    | _ -> assert false
  in
  let borrow_from_right ri =
    match (n.children.(idx), n.children.(ri)) with
    | Leaf left, Leaf right ->
        let k = right.lkeys.(0) and v = right.lvals.(0) in
        right.lkeys <- array_remove right.lkeys 0;
        right.lvals <- array_remove right.lvals 0;
        left.lkeys <- Array.append left.lkeys [| k |];
        left.lvals <- Array.append left.lvals [| v |];
        n.ikeys.(idx) <- right.lkeys.(0)
    | Internal left, Internal right ->
        left.ikeys <- Array.append left.ikeys [| n.ikeys.(idx) |];
        left.children <- Array.append left.children [| right.children.(0) |];
        n.ikeys.(idx) <- right.ikeys.(0);
        right.ikeys <- array_remove right.ikeys 0;
        right.children <- array_remove right.children 0
    | _ -> assert false
  in
  (* merge children idx and idx+1 into the left one *)
  let merge_with_right li =
    let ri = li + 1 in
    (match (n.children.(li), n.children.(ri)) with
    | Leaf left, Leaf right ->
        left.lkeys <- Array.append left.lkeys right.lkeys;
        left.lvals <- Array.append left.lvals right.lvals;
        left.next <- right.next
    | Internal left, Internal right ->
        left.ikeys <- Array.concat [ left.ikeys; [| n.ikeys.(li) |]; right.ikeys ];
        left.children <- Array.append left.children right.children
    | _ -> assert false);
    n.ikeys <- array_remove n.ikeys li;
    n.children <- array_remove n.children ri
  in
  let size child =
    match child with Leaf l -> Array.length l.lkeys | Internal i -> Array.length i.ikeys
  in
  if idx > 0 && size n.children.(idx - 1) > min_keys then borrow_from_left (idx - 1)
  else if idx < Array.length n.children - 1 && size n.children.(idx + 1) > min_keys
  then borrow_from_right (idx + 1)
  else if idx > 0 then merge_with_right (idx - 1)
  else merge_with_right idx

(* Returns (removed, underflowed). *)
let rec delete_node t node key row =
  match node with
  | Leaf l ->
      let pos = lower_bound l.lkeys key in
      if pos < Array.length l.lkeys && Value.equal l.lkeys.(pos) key then begin
        let had = List.mem row l.lvals.(pos) in
        if had then begin
          t.n_entries <- t.n_entries - 1;
          let removed_once = ref false in
          let remaining =
            List.filter
              (fun r ->
                if (not !removed_once) && r = row then begin
                  removed_once := true;
                  false
                end
                else true)
              l.lvals.(pos)
          in
          if remaining = [] then begin
            l.lkeys <- array_remove l.lkeys pos;
            l.lvals <- array_remove l.lvals pos;
            t.n_keys <- t.n_keys - 1
          end
          else l.lvals.(pos) <- remaining
        end;
        (had, leaf_underflow l)
      end
      else (false, false)
  | Internal n -> (
      let idx = upper_bound n.ikeys key in
      match delete_node t n.children.(idx) key row with
      | removed, true ->
          rebalance n idx;
          (removed, internal_underflow n)
      | removed, false -> (removed, false))

let delete t key row =
  if Value.is_null key then false
  else begin
    let removed, _ = delete_node t t.root key row in
    (* shrink the root: an internal root with a single child collapses *)
    (match t.root with
    | Internal n when Array.length n.children = 1 -> t.root <- n.children.(0)
    | _ -> ());
    removed
  end

let rec find_leaf node key =
  match node with
  | Leaf l -> l
  | Internal n -> find_leaf n.children.(upper_bound n.ikeys key) key

let find t key =
  if Value.is_null key then []
  else
    let l = find_leaf t.root key in
    let pos = lower_bound l.lkeys key in
    if pos < Array.length l.lkeys && Value.equal l.lkeys.(pos) key then l.lvals.(pos)
    else []

let mem t key = find t key <> []

let rec leftmost_leaf = function
  | Leaf l -> l
  | Internal n -> leftmost_leaf n.children.(0)

let range t ~lo ~hi f =
  let start_leaf =
    match lo with
    | None -> leftmost_leaf t.root
    | Some (k, _) -> find_leaf t.root k
  in
  let above_lo key =
    match lo with
    | None -> true
    | Some (k, incl) ->
        let c = Value.compare key k in
        if incl then c >= 0 else c > 0
  in
  let below_hi key =
    match hi with
    | None -> true
    | Some (k, incl) ->
        let c = Value.compare key k in
        if incl then c <= 0 else c < 0
  in
  let rec walk leaf =
    let stop = ref false in
    Array.iteri
      (fun i key ->
        if not !stop then
          if below_hi key then (if above_lo key then f key leaf.lvals.(i))
          else stop := true)
      leaf.lkeys;
    if not !stop then match leaf.next with Some next -> walk next | None -> ()
  in
  walk start_leaf

let n_keys t = t.n_keys

let n_entries t = t.n_entries

let rec node_height = function
  | Leaf _ -> 1
  | Internal n -> 1 + node_height n.children.(0)

let height t = node_height t.root

let keys t =
  let acc = ref [] in
  range t ~lo:None ~hi:None (fun k _ -> acc := k :: !acc);
  List.rev !acc

let check_invariants t =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let check_sorted keys where =
    for i = 0 to Array.length keys - 2 do
      if Value.compare keys.(i) keys.(i + 1) >= 0 then
        fail "unsorted keys in %s at %d" where i
    done
  in
  (* Returns depth; checks occupancy and key bounds along the way. *)
  let rec check node ~is_root ~lo ~hi =
    let in_bounds k =
      (match lo with None -> true | Some l -> Value.compare k l >= 0)
      && match hi with None -> true | Some h -> Value.compare k h < 0
    in
    match node with
    | Leaf l ->
        check_sorted l.lkeys "leaf";
        if Array.length l.lkeys <> Array.length l.lvals then fail "leaf key/val skew";
        Array.iter (fun k -> if not (in_bounds k) then fail "leaf key out of bounds") l.lkeys;
        Array.iter (fun v -> if v = [] then fail "empty posting list") l.lvals;
        if (not is_root) && Array.length l.lkeys < order / 2 then
          fail "leaf underfull (%d)" (Array.length l.lkeys);
        if Array.length l.lkeys > order then fail "leaf overfull";
        1
    | Internal n ->
        check_sorted n.ikeys "internal";
        if Array.length n.children <> Array.length n.ikeys + 1 then
          fail "internal child count mismatch";
        Array.iter
          (fun k -> if not (in_bounds k) then fail "separator out of bounds")
          n.ikeys;
        if (not is_root) && Array.length n.ikeys < order / 2 then fail "internal underfull";
        if Array.length n.ikeys > order then fail "internal overfull";
        let depth = ref None in
        Array.iteri
          (fun i child ->
            let child_lo = if i = 0 then lo else Some n.ikeys.(i - 1) in
            let child_hi = if i = Array.length n.ikeys then hi else Some n.ikeys.(i) in
            let d = check child ~is_root:false ~lo:child_lo ~hi:child_hi in
            match !depth with
            | None -> depth := Some d
            | Some d0 -> if d0 <> d then fail "unbalanced children")
          n.children;
        1 + Option.get !depth
  in
  match check t.root ~is_root:true ~lo:None ~hi:None with
  | (_ : int) ->
      (* Leaf chain must enumerate exactly the sorted key set. *)
      let chained = keys t in
      let sorted = List.sort Value.compare chained in
      if chained <> sorted then Error "leaf chain out of order"
      else if List.length chained <> t.n_keys then Error "n_keys out of sync"
      else Ok ()
  | exception Bad msg -> Error msg

let of_column table ~col =
  let t = create () in
  Table.iteri (fun row r -> insert t r.(col) row) table;
  t
