(** One table chunk, row-major or column-major.

    The constructors are exported for lib/storage internals (spill
    serialization, table stores) but lint-banned outside it; other code
    uses [rows] for the row view or [columnar] to detect and exploit the
    column-major form. *)

type t =
  | Rows of Value.t array array
  | Cols of Columnar.t

val of_rows : Value.t array array -> t
val of_columnar : Columnar.t -> t

val n_rows : t -> int

val rows : t -> Value.t array array
(** Row view. Decodes a columnar chunk (O(rows × cols) boxing) — hot
    paths should branch on [columnar] instead of calling this per row. *)

val columnar : t -> Columnar.t option
(** [Some c] iff the chunk is column-major. *)

val row : t -> int -> Value.t array

val byte_size : t -> int
(** Logical size ([Value.byte_size] sum), layout-invariant. *)
