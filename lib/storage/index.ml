type t = {
  table : string;
  column : string;
  unique : bool;
  tree : Btree.t;
}

let build (tbl : Table.t) ~column ~unique =
  let col =
    match Schema.find_by_name tbl.schema column with
    | Some i -> i
    | None ->
        invalid_arg (Printf.sprintf "Index.build: no column %s in %s" column tbl.name)
  in
  let tree = Btree.of_column tbl ~col in
  if unique && Btree.n_keys tree <> Btree.n_entries tree then
    invalid_arg
      (Printf.sprintf "Index.build: duplicate keys in unique index %s.%s" tbl.name column);
  { table = tbl.name; column; unique; tree }

let lookup t key = Btree.find t.tree key

let name t = t.table ^ "." ^ t.column
