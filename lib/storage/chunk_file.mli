(** On-disk chunk files for spilled tables.

    One write-once binary file per spilled table: a header plus one
    fixed-size frame per chunk, so faulting chunk [i] is a single
    seek + read at [header + i * frame_size]. Serialized values
    round-trip exactly (floats through their IEEE bits), which keeps
    out-of-core result digests byte-identical to in-memory execution.

    Reads open and close the file per call: no persistent descriptors,
    so concurrent faults from several domains need no coordination here
    — residency and deduplication of reads live in {!Buffer_pool}. *)

type t

val write :
  dir:string -> name:string -> arity:int -> Value.t array array array -> t * int array
(** [write ~dir ~name ~arity chunks] spills the chunks to a fresh
    uniquely-named file under [dir] and returns the handle plus each
    chunk's logical byte size ({!Value.byte_size} sum, computed during
    the serialization walk so {!Table.byte_size} never faults).
    Raises [Invalid_argument] on an empty chunk array or any zero-row
    chunk: a spilled frame must never be empty, or chunk faulting could
    map a row offset to a zero-length frame. *)

val read : t -> int -> Value.t array array
(** [read t i] faults frame [i] back in: open, seek, read, close.
    Safe to call concurrently from any domain. *)

val id : t -> int
(** Process-unique id, the buffer pool's cache key. *)

val path : t -> string

val n_frames : t -> int

val remove : t -> unit
(** Best-effort deletion of the backing file (spill dirs are scratch
    space; this is for tests that want eager cleanup). *)
