(** On-disk chunk files for spilled tables.

    One write-once binary file per spilled table: a header plus one
    fixed-size frame per chunk, so faulting chunk [i] is a single
    seek + read at [header + i * frame_size]. Each frame is tagged with
    its chunk's layout (row-major or column-major) and round-trips it
    exactly — floats through their IEEE bits, string dictionaries
    entry-for-entry — which keeps out-of-core result digests
    byte-identical to in-memory execution under either layout.

    Reads open and close the file per call: no persistent descriptors,
    so concurrent faults from several domains need no coordination here
    — residency and deduplication of reads live in {!Buffer_pool}. *)

type t

val ser_chunk_size : Chunk.t -> int
(** Exact serialized payload size of a chunk under its own layout
    (layout tag byte included). [write] sizes frames from the maximum of
    this over all chunks — not from the row-form size, which a
    dictionary-heavy string column (dict entries + 4-byte codes larger
    than the inline strings) can exceed. Exposed for the frame-sizing
    regression test. *)

val write : dir:string -> name:string -> arity:int -> Chunk.t array -> t * int array
(** [write ~dir ~name ~arity chunks] spills the chunks (in whichever
    layout each one is) to a fresh uniquely-named file under [dir] and
    returns the handle plus each chunk's logical byte size
    ({!Chunk.byte_size}, computed during the serialization walk so
    {!Table.byte_size} never faults). Raises [Invalid_argument] on an
    empty chunk array or any zero-row chunk: a spilled frame must never
    be empty, or chunk faulting could map a row offset to a zero-length
    frame. *)

val read : t -> int -> Chunk.t
(** [read t i] faults frame [i] back in (open, seek, read, close) in
    the layout it was written with. Safe to call concurrently from any
    domain. *)

val id : t -> int
(** Process-unique id, the buffer pool's cache key. *)

val path : t -> string

val n_frames : t -> int

val remove : t -> unit
(** Best-effort deletion of the backing file (spill dirs are scratch
    space; this is for tests that want eager cleanup). *)
