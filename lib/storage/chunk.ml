(* One table chunk in either layout. The constructors are private to
   lib/storage (lint-banned elsewhere, like [.rows]); consumers that can
   exploit the columnar form match on [columnar], everyone else calls
   [rows] and sees the classic row array. *)

type t =
  | Rows of Value.t array array
  | Cols of Columnar.t

let of_rows rows = Rows rows
let of_columnar c = Cols c

let n_rows = function
  | Rows r -> Array.length r
  | Cols c -> Columnar.n_rows c

(* Row view of the chunk. For a columnar chunk this decodes — callers on
   hot paths should match [columnar] first and keep the decode out of
   per-row loops. *)
let rows = function
  | Rows r -> r
  | Cols c -> Columnar.to_rows c

let columnar = function
  | Rows _ -> None
  | Cols c -> Some c

let row t i =
  match t with
  | Rows r -> r.(i)
  | Cols c -> Columnar.row c i

let byte_size = function
  | Rows r ->
      Array.fold_left
        (fun acc row ->
          Array.fold_left (fun acc v -> acc + Value.byte_size v) acc row)
        0 r
  | Cols c -> Columnar.byte_size c
