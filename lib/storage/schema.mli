(** Relation schemas.

    A column is qualified by the relation name it belongs to (a base-table
    name, a query alias, or a temporary-table name), so joined schemas keep
    unambiguous column identities. *)

type column = { rel : string; name : string; ty : Value.ty }

type t = column array

val column : rel:string -> name:string -> ty:Value.ty -> column

val make : string -> (string * Value.ty) list -> t
(** [make rel cols] builds a schema whose columns are all qualified by
    [rel]. *)

val arity : t -> int

val concat : t -> t -> t
(** Schema of a join output: left columns then right columns. *)

val requalify : string -> t -> t
(** [requalify alias s] re-labels every column as belonging to [alias]
    (used when a base table is scanned under a query alias, or when a
    materialized temp table adopts the surviving columns). *)

val find : t -> rel:string -> name:string -> int option
(** Position of the column qualified as [rel.name], if present. *)

val find_exn : t -> rel:string -> name:string -> int

val find_by_name : t -> string -> int option
(** Position of the unique column called [name] regardless of qualifier;
    [None] if absent or ambiguous. *)

val mem : t -> rel:string -> name:string -> bool

val column_id : column -> string
(** ["rel.name"], the display / lookup form. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
