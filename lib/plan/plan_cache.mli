(** Cross-session shared statement/plan cache.

    Maps a canonical statement key to a cached value (in the serving
    front end: the optimizer's result for that statement), with
    request coalescing: when several sessions ask for the same missing
    key concurrently, exactly one computes it while the others block
    until the value lands, so the hit/miss counters are deterministic —
    over any run, [misses] equals the number of distinct keys computed
    and [hits = lookups - misses].

    Invalidation is by key construction, following [Dp_memo]'s epoch
    discipline: {!stamp} embeds each referenced base table's
    [Stats_registry] epoch into the key, so an [ANALYZE] /
    [Stats_registry.invalidate] bump means stale entries are simply
    never looked up again (no eager eviction, no lock ordering with the
    registry). *)

type 'a t

val create : unit -> 'a t

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a * bool
(** [find_or_compute t ~key f] returns the cached value for [key] (and
    whether the lookup was a hit), computing it with [f] on a miss.
    Coalesced waits count as hits. [f] runs outside the cache lock;
    concurrent requests for the same missing key wait for the single
    in-flight computation instead of duplicating it. If [f] raises, the
    exception propagates to its caller, nothing is cached, and one of
    the waiters (if any) retries the computation.

    Must not be called from a pool worker job that another
    [find_or_compute] caller is waiting on — waiters block on a
    condition variable, not by helping the pool. The serving front end
    resolves plans at admission time, on session threads, so this never
    arises there. *)

val hits : 'a t -> int
(** Lookups answered from the cache, including coalesced waits. *)

val misses : 'a t -> int
(** Lookups that ran the computation (distinct keys, minus failures). *)

val size : 'a t -> int
(** Cached entries currently resident. *)

val clear : 'a t -> unit
(** Drop all entries (counters keep accumulating). *)

val stamp :
  registry:Qs_stats.Stats_registry.t -> tables:string list -> string -> string
(** [stamp ~registry ~tables key] appends each table's current stats
    epoch ([table#epoch], sorted by table name) to [key]. Keys built
    this way go stale automatically when [Stats_registry.invalidate]
    bumps an epoch: the next lookup constructs a different key and
    misses. *)
