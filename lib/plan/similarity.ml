(* A join subtree is canonicalized as its sorted alias set; two plans share
   a subtree when some join node of each covers the same alias set *and*
   all of that node's internal join structure matches recursively. For the
   similarity score, matching alias sets at every level is equivalent to
   matching structure, because a join node's children partition its alias
   set: if both plans contain nodes for set S and the partition of S
   differs, the sub-partitions themselves are non-common sets — so taking
   the largest common *hereditarily common* set is captured by requiring
   that every descendant join set of the candidate node in plan A is also a
   join set in plan B and vice versa. *)

let join_sets plan =
  Physical.join_leaf_sets plan |> List.map (fun s -> String.concat "," s)

let rec subtree_sets (p : Physical.t) =
  match p.Physical.node with
  | Physical.Scan _ -> []
  | Physical.Join j ->
      (String.concat "," (List.sort compare p.Physical.rels), p)
      :: (subtree_sets j.Physical.left @ subtree_sets j.Physical.right)

let rec hereditarily_common (p : Physical.t) other_sets =
  match p.Physical.node with
  | Physical.Scan _ -> true
  | Physical.Join j ->
      List.mem (String.concat "," (List.sort compare p.Physical.rels)) other_sets
      && hereditarily_common j.Physical.left other_sets
      && hereditarily_common j.Physical.right other_sets

let first_joins (p : Physical.t) =
  List.filter
    (fun n ->
      match n.Physical.node with
      | Physical.Join
          { left = { node = Physical.Scan _; _ }; right = { node = Physical.Scan _; _ }; _ }
        ->
          true
      | _ -> false)
    (Physical.joins_post_order p)

let score a b =
  let sets_b = join_sets b in
  let common_leaf_counts =
    subtree_sets a
    |> List.filter_map (fun (set, node) ->
           if List.mem set sets_b && hereditarily_common node sets_b then
             Some (List.length node.Physical.rels)
           else None)
  in
  match common_leaf_counts with
  | _ :: _ -> List.fold_left max 0 common_leaf_counts
  | [] ->
      (* No common join subtree: 1 if some pair of first joins shares a
         scanned relation, 0 otherwise. *)
      let fa = first_joins a and fb = first_joins b in
      let shares =
        List.exists
          (fun na ->
            List.exists
              (fun nb ->
                List.exists (fun r -> List.mem r nb.Physical.rels) na.Physical.rels)
              fb)
          fa
      in
      if shares then 1 else 0

let bucket = function
  | 0 -> "0"
  | 1 -> "1"
  | 2 -> "2"
  | _ -> ">2"
