module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Expr = Qs_query.Expr
module Fragment = Qs_stats.Fragment
module Estimator = Qs_stats.Estimator
module Table_stats = Qs_stats.Table_stats
module Column_stats = Qs_stats.Column_stats
module Span = Qs_util.Span

type result = {
  plan : Physical.t;
  est_rows : float;
  est_cost : float;
}

let dp_input_limit = 13

let estimate_subset (est : Estimator.t) frag subset =
  est.card (Fragment.restrict frag subset)

(* --- helpers over bitmask subsets ------------------------------------ *)

let bit i = 1 lsl i

(* position of the single set bit of a one-hot mask *)
let bit_index mask =
  let rec go i m = if m land 1 = 1 then i else go (i + 1) (m lsr 1) in
  go 0 mask

let subset_inputs inputs mask =
  List.filteri (fun i _ -> mask land bit i <> 0) (Array.to_list inputs)

(* Predicates with relations on both sides of the partition. *)
let _cross_preds frag inputs lmask rmask =
  let aliases_of mask =
    List.concat_map (fun i -> i.Fragment.provides) (subset_inputs inputs mask)
  in
  let la = aliases_of lmask and ra = aliases_of rmask in
  List.filter
    (fun p ->
      let rels = Expr.rels_of_pred p in
      List.exists (fun r -> List.mem r la) rels
      && List.exists (fun r -> List.mem r ra) rels
      && List.for_all (fun r -> List.mem r la || List.mem r ra) rels)
    frag.Fragment.preds

(* The inner-side index usable for an index nested-loop join: the inner is
   a single base input and one of the equi-join predicates touches an
   indexed column of it. *)
let usable_index catalog (inner : Fragment.input) preds =
  (* orient an equality predicate wrt the inner input: [None] when it is
     not an equality or when neither side belongs to the inner input *)
  let oriented p =
    match Expr.join_sides p with
    | None -> None
    | Some (a, b) ->
        if List.mem a.Expr.rel inner.Fragment.provides then Some (a, b)
        else if List.mem b.Expr.rel inner.Fragment.provides then Some (b, a)
        else None
  in
  if inner.Fragment.is_temp then None
  else
    match inner.Fragment.base_table with
    | None -> None
    | Some base ->
        List.find_map
          (fun p ->
            match oriented p with
            | None -> None
            | Some (inner_key, outer_key) ->
                Catalog.find_index catalog ~table:base ~column:inner_key.Expr.name
                |> Option.map (fun ix -> (ix, outer_key, inner_key, p)))
          preds

(* Expected total index hits before residual predicates: one lookup per
   outer row, each matching raw_inner_rows/ndv(inner key) entries. *)
let index_matches (inner : Fragment.input) (inner_key : Expr.colref) ~outer_rows =
  let raw = float_of_int (Table_stats.n_rows inner.Fragment.stats) in
  let ndv =
    match Table_stats.find inner.Fragment.stats ~rel:inner_key.Expr.rel ~name:inner_key.Expr.name with
    | Some cs when cs.Column_stats.n_distinct > 0 -> float_of_int cs.Column_stats.n_distinct
    | _ -> Float.max 1.0 raw
  in
  outer_rows *. Float.max 1.0 (raw /. ndv)

let scan_node (input : Fragment.input) ~est_rows =
  let raw = float_of_int (Table_stats.n_rows input.Fragment.stats) in
  let cost = Cost_model.scan ~rows:raw ~n_filters:(List.length input.Fragment.filters) in
  Physical.scan input ~est_rows ~est_cost:cost

(* All physical candidates for joining two planned sides. *)
let join_candidates ~allowed catalog (left : Physical.t) (right : Physical.t) preds ~out_rows =
  let equi = List.exists (fun p -> Expr.join_sides p <> None) preds in
  let permitted m = List.mem m allowed in
  let hash_candidates =
    if (not equi) || not (permitted Physical.Hash) then []
    else
      [ (left, right); (right, left) ]
      |> List.map (fun (build, probe) ->
             let cost =
               build.Physical.est_cost +. probe.Physical.est_cost
               +. Cost_model.hash_join ~build_rows:build.Physical.est_rows
                    ~probe_rows:probe.Physical.est_rows ~out_rows
             in
             Physical.join ~method_:Physical.Hash () ~left:build ~right:probe ~preds
               ~est_rows:out_rows ~est_cost:cost)
  in
  let index_candidates =
    (if permitted Physical.Index_nl then [ (left, right); (right, left) ] else [])
    |> List.filter_map (fun (outer, inner) ->
           match inner.Physical.node with
           | Physical.Scan inner_input -> (
               match usable_index catalog inner_input preds with
               | Some (ix, outer_key, inner_key, _) ->
                   let matches =
                     index_matches inner_input inner_key
                       ~outer_rows:outer.Physical.est_rows
                   in
                   let inner_raw =
                     float_of_int (Table_stats.n_rows inner_input.Fragment.stats)
                   in
                   let cost =
                     outer.Physical.est_cost
                     +. Cost_model.index_nl_join ~outer_rows:outer.Physical.est_rows
                          ~inner_rows:inner_raw ~matches ~out_rows
                   in
                   Some
                     (Physical.join ~method_:Physical.Index_nl
                        ~index:(ix, outer_key, inner_key) () ~left:outer ~right:inner
                        ~preds ~est_rows:out_rows ~est_cost:cost)
               | None -> None)
           | _ -> None)
  in
  let nl_candidates =
    (if permitted Physical.Nl || (not equi) || hash_candidates = [] then
       [ (left, right); (right, left) ]
     else [])
    |> List.map (fun (outer, inner) ->
           let cost =
             outer.Physical.est_cost +. inner.Physical.est_cost
             +. Cost_model.nl_join ~outer_rows:outer.Physical.est_rows
                  ~inner_rows:inner.Physical.est_rows ~out_rows
           in
           Physical.join ~method_:Physical.Nl () ~left:outer ~right:inner ~preds
             ~est_rows:out_rows ~est_cost:cost)
  in
  hash_candidates @ index_candidates @ nl_candidates

let best_of candidates =
  match candidates with
  | [] -> None
  | c :: rest ->
      Some
        (List.fold_left
           (fun acc n -> if n.Physical.est_cost < acc.Physical.est_cost then n else acc)
           c rest)

(* --- exact DP --------------------------------------------------------- *)

let popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 m

let dp_plan ?spans ~allowed catalog (est : Estimator.t) (frag : Fragment.t) =
  let inputs = Array.of_list frag.inputs in
  let n = Array.length inputs in
  let full = (1 lsl n) - 1 in
  (* precompute, per predicate, the bitmask of inputs it touches *)
  let alias_bit = Hashtbl.create 16 in
  Array.iteri
    (fun i input ->
      List.iter (fun a -> Hashtbl.replace alias_bit a (bit i)) input.Fragment.provides)
    inputs;
  let pred_masks =
    List.map
      (fun p ->
        let m =
          List.fold_left
            (fun acc a -> acc lor Option.value (Hashtbl.find_opt alias_bit a) ~default:0)
            0 (Expr.rels_of_pred p)
        in
        (p, m))
      frag.Fragment.preds
  in
  let cross l r =
    List.filter_map
      (fun (p, m) ->
        if m land l <> 0 && m land r <> 0 && m land lnot (l lor r) = 0 then Some p
        else None)
      pred_masks
  in
  let card_memo = Hashtbl.create 256 in
  let card mask =
    match Hashtbl.find_opt card_memo mask with
    | Some c -> c
    | None ->
        let c = estimate_subset est frag (subset_inputs inputs mask) in
        Hashtbl.replace card_memo mask c;
        c
  in
  let permitted m = List.mem m allowed in
  (* The DP keeps, per subset, only the best cost plus a compact spec of
     how it is achieved; Physical nodes are built once at the end. This
     keeps the 3^n partition sweep allocation-free. *)
  let best_cost = Array.make (full + 1) Float.infinity in
  (* spec: -1 = unset, 0 = scan; otherwise (method, lmask) with lmask the
     Physical left role (hash build / NL outer). *)
  let best_spec : (Physical.join_method * int) option array = Array.make (full + 1) None in
  for i = 0 to n - 1 do
    let input = inputs.(i) in
    let raw = float_of_int (Table_stats.n_rows input.Fragment.stats) in
    best_cost.(bit i) <-
      Cost_model.scan ~rows:raw ~n_filters:(List.length input.Fragment.filters);
    best_spec.(bit i) <- Some (Physical.Nl, 0) (* placeholder; scans detected by mask size *)
  done;
  let singleton mask = mask land (mask - 1) = 0 in
  let index_join_cost preds ~outer_mask ~inner_mask ~out_rows =
    (* inner must be a single base input with a usable index *)
    if not (singleton inner_mask) then None
    else
      let inner = inputs.(bit_index inner_mask) in
      match usable_index catalog inner preds with
      | None -> None
      | Some (_, _, inner_key, _) ->
          let matches =
            index_matches inner inner_key
              ~outer_rows:(card outer_mask)
          in
          let inner_raw = float_of_int (Table_stats.n_rows inner.Fragment.stats) in
          Some
            (best_cost.(outer_mask)
            +. Cost_model.index_nl_join ~outer_rows:(card outer_mask)
                 ~inner_rows:inner_raw ~matches ~out_rows)
  in
  let process mask =
    begin
      let out_rows = card mask in
      let consider ~connected l r preds =
        ignore connected;
        let lr = card l and rr = card r in
        let equi = List.exists (fun p -> Expr.join_sides p <> None) preds in
        let try_spec cost spec =
          if cost < best_cost.(mask) then begin
            best_cost.(mask) <- cost;
            best_spec.(mask) <- Some spec
          end
        in
        if equi && permitted Physical.Hash then begin
          try_spec
            (best_cost.(l) +. best_cost.(r)
            +. Cost_model.hash_join ~build_rows:lr ~probe_rows:rr ~out_rows)
            (Physical.Hash, l);
          try_spec
            (best_cost.(l) +. best_cost.(r)
            +. Cost_model.hash_join ~build_rows:rr ~probe_rows:lr ~out_rows)
            (Physical.Hash, r)
        end;
        if equi && permitted Physical.Index_nl then begin
          (match index_join_cost preds ~outer_mask:l ~inner_mask:r ~out_rows with
          | Some cost -> try_spec cost (Physical.Index_nl, l)
          | None -> ());
          match index_join_cost preds ~outer_mask:r ~inner_mask:l ~out_rows with
          | Some cost -> try_spec cost (Physical.Index_nl, r)
          | None -> ()
        end;
        (* NL is also the fallback of last resort, exactly as in
           [join_candidates]: without it, [allowed = [Index_nl]] and no
           usable index would leave [best_spec] unset and [build] would
           raise. An index join may or may not apply (it depends on the
           catalog), so the fallback keys on hash join availability. *)
        let hash_possible = equi && permitted Physical.Hash in
        if permitted Physical.Nl || (not equi) || not hash_possible then begin
          try_spec
            (best_cost.(l) +. best_cost.(r)
            +. Cost_model.nl_join ~outer_rows:lr ~inner_rows:rr ~out_rows)
            (Physical.Nl, l);
          try_spec
            (best_cost.(l) +. best_cost.(r)
            +. Cost_model.nl_join ~outer_rows:rr ~inner_rows:lr ~out_rows)
            (Physical.Nl, r)
        end
      in
      let any_connected = ref false in
      let sub = ref ((mask - 1) land mask) in
      while !sub > 0 do
        let l = !sub and r = mask lxor !sub in
        if l < r && best_cost.(l) < Float.infinity && best_cost.(r) < Float.infinity
        then begin
          let preds = cross l r in
          if preds <> [] then begin
            any_connected := true;
            consider ~connected:true l r preds
          end
        end;
        sub := (!sub - 1) land mask
      done;
      if not !any_connected then begin
        (* cartesian partitions only when the subset is disconnected *)
        let sub = ref ((mask - 1) land mask) in
        while !sub > 0 do
          let l = !sub and r = mask lxor !sub in
          if l < r && best_cost.(l) < Float.infinity && best_cost.(r) < Float.infinity
          then consider ~connected:false l r [];
          sub := (!sub - 1) land mask
        done
      end
    end
  in
  (* Level-wise enumeration (DPsize order): a subset only ever combines
     two strictly smaller subsets, so grouping masks by popcount leaves
     the DP unchanged — and gives the tracer one [dp-level] span per
     level, the natural unit for the planned parallel-DP work. *)
  let levels = Array.make (n + 1) [] in
  for mask = full downto 1 do
    let k = popcount mask in
    if k >= 2 then levels.(k) <- mask :: levels.(k)
  done;
  for level = 2 to n do
    if levels.(level) <> [] then
      Span.span spans Span.Dp_level
        ~args:[ ("subsets", string_of_int (List.length levels.(level))) ]
        (Printf.sprintf "dp-level-%d" level)
        (fun () -> List.iter process levels.(level))
  done;
  (* materialize the best plan bottom-up from the specs *)
  let rec build mask =
    if singleton mask then
      scan_node inputs.(bit_index mask) ~est_rows:(card mask)
    else
      match best_spec.(mask) with
      | None -> invalid_arg "Optimizer.dp_plan: no plan found"
      | Some (method_, lmask) ->
          let rmask = mask lxor lmask in
          let left = build lmask and right = build rmask in
          let preds = cross lmask rmask in
          let index =
            match method_ with
            | Physical.Index_nl -> (
                let inner = inputs.(bit_index rmask) in
                match usable_index catalog inner preds with
                | Some (ix, outer_key, inner_key, _) -> Some (ix, outer_key, inner_key)
                | None -> invalid_arg "Optimizer.dp_plan: index vanished")
            | _ -> None
          in
          Physical.join ~method_ ?index () ~left ~right ~preds ~est_rows:(card mask)
            ~est_cost:best_cost.(mask)
  in
  build full

(* --- greedy fallback for very wide fragments -------------------------- *)

let greedy_plan ~allowed catalog (est : Estimator.t) (frag : Fragment.t) =
  let planned =
    ref
      (List.map
         (fun i ->
           let rows = estimate_subset est frag [ i ] in
           (([ i ] : Fragment.input list), scan_node i ~est_rows:rows))
         frag.inputs)
  in
  while List.length !planned > 1 do
    let best = ref None in
    List.iteri
      (fun ai (a_inputs, ap) ->
        List.iteri
          (fun bi (b_inputs, bp) ->
            if ai < bi then begin
              let merged = a_inputs @ b_inputs in
              let sub = Fragment.restrict frag merged in
              let connecting =
                List.filter
                  (fun p ->
                    let rels = Expr.rels_of_pred p in
                    List.exists
                      (fun r ->
                        List.exists (fun i -> List.mem r i.Fragment.provides) a_inputs)
                      rels
                    && List.exists
                         (fun r ->
                           List.exists (fun i -> List.mem r i.Fragment.provides) b_inputs)
                         rels)
                  sub.Fragment.preds
              in
              if connecting <> [] || List.length !planned = 2 then begin
                let out_rows = estimate_subset est frag merged in
                match best_of (join_candidates ~allowed catalog ap bp connecting ~out_rows) with
                | Some cand -> (
                    match !best with
                    | Some (_, _, b) when b.Physical.est_cost <= cand.Physical.est_cost -> ()
                    | _ -> best := Some (ai, bi, cand))
                | None -> ()
              end
            end)
          !planned)
      !planned;
    match !best with
    | None ->
        (* fully disconnected step: merge the two smallest with a cartesian *)
        let sorted =
          List.sort
            (fun (_, a) (_, b) -> compare a.Physical.est_rows b.Physical.est_rows)
            !planned
        in
        let (ia, pa), (ib, pb) = (List.nth sorted 0, List.nth sorted 1) in
        let merged = ia @ ib in
        let out_rows = estimate_subset est frag merged in
        let cand = Option.get (best_of (join_candidates ~allowed catalog pa pb [] ~out_rows)) in
        planned :=
          (merged, cand)
          :: List.filter (fun (ins, _) -> ins != ia && ins != ib) !planned
    | Some (ai, bi, cand) ->
        let a_inputs = fst (List.nth !planned ai) in
        let b_inputs = fst (List.nth !planned bi) in
        planned :=
          (a_inputs @ b_inputs, cand)
          :: List.filteri (fun i _ -> i <> ai && i <> bi) !planned
  done;
  snd (List.hd !planned)

let optimize ?(allowed = [ Physical.Hash; Physical.Index_nl; Physical.Nl ]) ?spans
    catalog est frag =
  if frag.Fragment.inputs = [] then invalid_arg "Optimizer.optimize: empty fragment";
  let n = List.length frag.Fragment.inputs in
  let plan =
    if n <= dp_input_limit then
      Span.span spans Span.Optimize
        ~args:[ ("inputs", string_of_int n) ]
        (Printf.sprintf "dp n=%d" n)
        (fun () -> dp_plan ?spans ~allowed catalog est frag)
    else
      Span.span spans Span.Optimize
        ~args:[ ("inputs", string_of_int n) ]
        (Printf.sprintf "greedy n=%d" n)
        (fun () -> greedy_plan ~allowed catalog est frag)
  in
  { plan; est_rows = plan.Physical.est_rows; est_cost = plan.Physical.est_cost }

(* --- re-costing a fixed plan under another estimator ------------------ *)

let cost_plan catalog est (frag : Fragment.t) plan =
  ignore catalog;
  let rec go (p : Physical.t) =
    match p.Physical.node with
    | Physical.Scan input ->
        let raw = float_of_int (Table_stats.n_rows input.Fragment.stats) in
        let rows = estimate_subset est frag [ input ] in
        let cost =
          Cost_model.scan ~rows:raw ~n_filters:(List.length input.Fragment.filters)
        in
        (rows, cost)
    | Physical.Join j -> (
        let lrows, lcost = go j.Physical.left in
        let rrows, rcost = go j.Physical.right in
        let out_rows =
          estimate_subset est frag
            (Physical.leaves j.Physical.left @ Physical.leaves j.Physical.right)
        in
        match j.Physical.method_ with
        | Physical.Hash ->
            ( out_rows,
              lcost +. rcost
              +. Cost_model.hash_join ~build_rows:lrows ~probe_rows:rrows ~out_rows )
        | Physical.Index_nl ->
            let inner_input =
              match j.Physical.right.Physical.node with
              | Physical.Scan i -> i
              | _ -> invalid_arg "cost_plan: index NL inner is not a scan"
            in
            let _, _, inner_key =
              match j.Physical.index with
              | Some (ix, ok, ik) -> (ix, ok, ik)
              | None -> invalid_arg "cost_plan: index NL without index"
            in
            let matches = index_matches inner_input inner_key ~outer_rows:lrows in
            let inner_raw = float_of_int (Table_stats.n_rows inner_input.Fragment.stats) in
            ( out_rows,
              lcost
              +. Cost_model.index_nl_join ~outer_rows:lrows ~inner_rows:inner_raw
                   ~matches ~out_rows )
        | Physical.Nl ->
            ( out_rows,
              lcost +. rcost
              +. Cost_model.nl_join ~outer_rows:lrows ~inner_rows:rrows ~out_rows ))
  in
  snd (go plan)
