module Catalog = Qs_storage.Catalog
module Table = Qs_storage.Table
module Expr = Qs_query.Expr
module Fragment = Qs_stats.Fragment
module Estimator = Qs_stats.Estimator
module Table_stats = Qs_stats.Table_stats
module Column_stats = Qs_stats.Column_stats
module Span = Qs_util.Span
module Timer = Qs_util.Timer
module Pool = Qs_util.Pool

type result = {
  plan : Physical.t;
  est_rows : float;
  est_cost : float;
}

(* Above this input count the exact DP (3^n partition sweep) gives way to
   the greedy fallback. Configurable ([--dp-limit] on bench and qsdemo):
   with the pooled DP the exact path stays affordable well past the
   historical hard-coded 13. Atomic because harness cells on separate
   domains read it concurrently. *)
let dp_limit = Atomic.make 13
let dp_input_limit () = Atomic.get dp_limit
let set_dp_input_limit n = Atomic.set dp_limit (max 1 n)

let estimate_subset (est : Estimator.t) frag subset =
  est.card (Fragment.restrict frag subset)

(* --- helpers over bitmask subsets ------------------------------------ *)

let bit i = 1 lsl i

(* position of the single set bit of a one-hot mask *)
let bit_index mask =
  let rec go i m = if m land 1 = 1 then i else go (i + 1) (m lsr 1) in
  go 0 mask

let subset_inputs inputs mask =
  List.filteri (fun i _ -> mask land bit i <> 0) (Array.to_list inputs)

(* Predicates with relations on both sides of the partition. *)
let _cross_preds frag inputs lmask rmask =
  let aliases_of mask =
    List.concat_map (fun i -> i.Fragment.provides) (subset_inputs inputs mask)
  in
  let la = aliases_of lmask and ra = aliases_of rmask in
  List.filter
    (fun p ->
      let rels = Expr.rels_of_pred p in
      List.exists (fun r -> List.mem r la) rels
      && List.exists (fun r -> List.mem r ra) rels
      && List.for_all (fun r -> List.mem r la || List.mem r ra) rels)
    frag.Fragment.preds

(* The inner-side index usable for an index nested-loop join: the inner is
   a single base input and one of the equi-join predicates touches an
   indexed column of it. *)
let usable_index catalog (inner : Fragment.input) preds =
  (* orient an equality predicate wrt the inner input: [None] when it is
     not an equality or when neither side belongs to the inner input *)
  let oriented p =
    match Expr.join_sides p with
    | None -> None
    | Some (a, b) ->
        if List.mem a.Expr.rel inner.Fragment.provides then Some (a, b)
        else if List.mem b.Expr.rel inner.Fragment.provides then Some (b, a)
        else None
  in
  if inner.Fragment.is_temp then None
  else
    match inner.Fragment.base_table with
    | None -> None
    | Some base ->
        List.find_map
          (fun p ->
            match oriented p with
            | None -> None
            | Some (inner_key, outer_key) ->
                Catalog.find_index catalog ~table:base ~column:inner_key.Expr.name
                |> Option.map (fun ix -> (ix, outer_key, inner_key, p)))
          preds

(* Expected total index hits before residual predicates: one lookup per
   outer row, each matching raw_inner_rows/ndv(inner key) entries. *)
let index_matches (inner : Fragment.input) (inner_key : Expr.colref) ~outer_rows =
  let raw = float_of_int (Table_stats.n_rows inner.Fragment.stats) in
  let ndv =
    match Table_stats.find inner.Fragment.stats ~rel:inner_key.Expr.rel ~name:inner_key.Expr.name with
    | Some cs when cs.Column_stats.n_distinct > 0 -> float_of_int cs.Column_stats.n_distinct
    | _ -> Float.max 1.0 raw
  in
  outer_rows *. Float.max 1.0 (raw /. ndv)

let scan_node (input : Fragment.input) ~est_rows =
  let raw = float_of_int (Table_stats.n_rows input.Fragment.stats) in
  let cost = Cost_model.scan ~rows:raw ~n_filters:(List.length input.Fragment.filters) in
  Physical.scan input ~est_rows ~est_cost:cost

(* All physical candidates for joining two planned sides. *)
let join_candidates ~allowed catalog (left : Physical.t) (right : Physical.t) preds ~out_rows =
  let equi = List.exists (fun p -> Expr.join_sides p <> None) preds in
  let permitted m = List.mem m allowed in
  let hash_candidates =
    if (not equi) || not (permitted Physical.Hash) then []
    else
      [ (left, right); (right, left) ]
      |> List.map (fun (build, probe) ->
             let cost =
               build.Physical.est_cost +. probe.Physical.est_cost
               +. Cost_model.hash_join ~build_rows:build.Physical.est_rows
                    ~probe_rows:probe.Physical.est_rows ~out_rows
             in
             Physical.join ~method_:Physical.Hash () ~left:build ~right:probe ~preds
               ~est_rows:out_rows ~est_cost:cost)
  in
  let index_candidates =
    (if permitted Physical.Index_nl then [ (left, right); (right, left) ] else [])
    |> List.filter_map (fun (outer, inner) ->
           match inner.Physical.node with
           | Physical.Scan inner_input -> (
               match usable_index catalog inner_input preds with
               | Some (ix, outer_key, inner_key, _) ->
                   let matches =
                     index_matches inner_input inner_key
                       ~outer_rows:outer.Physical.est_rows
                   in
                   let inner_raw =
                     float_of_int (Table_stats.n_rows inner_input.Fragment.stats)
                   in
                   let cost =
                     outer.Physical.est_cost
                     +. Cost_model.index_nl_join ~outer_rows:outer.Physical.est_rows
                          ~inner_rows:inner_raw ~matches ~out_rows
                   in
                   Some
                     (Physical.join ~method_:Physical.Index_nl
                        ~index:(ix, outer_key, inner_key) () ~left:outer ~right:inner
                        ~preds ~est_rows:out_rows ~est_cost:cost)
               | None -> None)
           | _ -> None)
  in
  let nl_candidates =
    (if permitted Physical.Nl || (not equi) || hash_candidates = [] then
       [ (left, right); (right, left) ]
     else [])
    |> List.map (fun (outer, inner) ->
           let cost =
             outer.Physical.est_cost +. inner.Physical.est_cost
             +. Cost_model.nl_join ~outer_rows:outer.Physical.est_rows
                  ~inner_rows:inner.Physical.est_rows ~out_rows
           in
           Physical.join ~method_:Physical.Nl () ~left:outer ~right:inner ~preds
             ~est_rows:out_rows ~est_cost:cost)
  in
  hash_candidates @ index_candidates @ nl_candidates

let best_of candidates =
  match candidates with
  | [] -> None
  | c :: rest ->
      Some
        (List.fold_left
           (fun acc n -> if n.Physical.est_cost < acc.Physical.est_cost then n else acc)
           c rest)

(* --- exact DP --------------------------------------------------------- *)

let popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 m

(* k nearly-equal contiguous chunks, order-preserving; at most [k] and
   never more than [List.length lst] chunks. *)
let chunk_list k lst =
  let len = List.length lst in
  let k = max 1 (min k len) in
  let base = len / k and extra = len mod k in
  let rec take n lst acc =
    if n = 0 then (List.rev acc, lst)
    else
      match lst with
      | [] -> (List.rev acc, [])
      | x :: tl -> take (n - 1) tl (x :: acc)
  in
  let rec go i lst =
    if i >= k then []
    else
      let sz = base + if i < extra then 1 else 0 in
      let c, rest = take sz lst [] in
      c :: go (i + 1) rest
  in
  go 0 lst

(* Fan a level out only when the partition sweep dwarfs the dispatch
   overhead; below this many subsets the sequential loop wins. *)
let par_level_threshold = 16

let dp_plan ?spans ?pool ?memo ~allowed catalog (est : Estimator.t) (frag : Fragment.t) =
  let inputs = Array.of_list frag.inputs in
  let n = Array.length inputs in
  let full = (1 lsl n) - 1 in
  (* precompute, per predicate, the bitmask of inputs it touches *)
  let alias_bit = Hashtbl.create 16 in
  Array.iteri
    (fun i input ->
      List.iter (fun a -> Hashtbl.replace alias_bit a (bit i)) input.Fragment.provides)
    inputs;
  let pred_masks =
    List.map
      (fun p ->
        let m =
          List.fold_left
            (fun acc a -> acc lor Option.value (Hashtbl.find_opt alias_bit a) ~default:0)
            0 (Expr.rels_of_pred p)
        in
        (p, m))
      frag.Fragment.preds
  in
  let cross l r =
    List.filter_map
      (fun (p, m) ->
        if m land l <> 0 && m land r <> 0 && m land lnot (l lor r) = 0 then Some p
        else None)
      pred_masks
  in
  (* Flat views of the predicates for the partition sweep. [cross] above
     materializes a list per partition — fine for [build], which runs once
     per chosen node, but the sweep visits ~3^n partitions and a list (plus
     closure) per partition floods the minor heap; under a domain pool the
     resulting stop-the-world minor collections serialize the workers. The
     sweep therefore scans these arrays in place, allocating nothing.
     Order matters for byte-identical plans: [pmask_arr]/[sides_arr] keep
     [pred_masks] order, which is the order [cross] yields. *)
  let pmask_arr = Array.of_list (List.map snd pred_masks) in
  let sides_arr =
    Array.of_list (List.map (fun (p, _) -> Expr.join_sides p) pred_masks)
  in
  let n_preds = Array.length pmask_arr in
  (* does predicate [i] connect partition [l]|[r] (touch both sides, leak
     outside neither)? *)
  let applies i l r =
    let m = pmask_arr.(i) in
    m land l <> 0 && m land r <> 0 && m land lnot (l lor r) = 0
  in
  let rec crossing i l r = i < n_preds && (applies i l r || crossing (i + 1) l r) in
  let rec crossing_equi i l r =
    i < n_preds
    && ((applies i l r && sides_arr.(i) <> None) || crossing_equi (i + 1) l r)
  in
  (* [usable_index] on the flat views: first predicate in [pred_masks]
     order that connects the partition, is an equality, and keys an indexed
     column of [inner] — same pick as [usable_index catalog inner (cross l r)],
     without building the list. Only the inner key is needed for costing. *)
  let usable_inner_key (inner : Fragment.input) l r =
    if inner.Fragment.is_temp then None
    else
      match inner.Fragment.base_table with
      | None -> None
      | Some base ->
          let rec go i =
            if i >= n_preds then None
            else
              let next () = go (i + 1) in
              if not (applies i l r) then next ()
              else
                match sides_arr.(i) with
                | None -> next ()
                | Some (a, b) ->
                    let key =
                      if List.mem a.Expr.rel inner.Fragment.provides then Some a
                      else if List.mem b.Expr.rel inner.Fragment.provides then Some b
                      else None
                    in
                    (match key with
                    | None -> next ()
                    | Some inner_key -> (
                        match
                          Catalog.find_index catalog ~table:base
                            ~column:inner_key.Expr.name
                        with
                        | Some _ -> Some inner_key
                        | None -> next ()))
          in
          go 0
  in
  (* Cardinalities live in a flat array (nan = unknown) so pool workers
     can read them without synchronization. Every value a worker might
     read is computed on the calling domain first — singletons below,
     each level's masks in a pre-pass before that level's sweep — because
     the estimator mutates per-input scratch Hashtbls ([input.memo]) that
     are not safe to share across domains. The lazy branch only runs
     sequentially (or as a defensive fallback). *)
  let card_arr = Array.make (full + 1) Float.nan in
  let card mask =
    let c = card_arr.(mask) in
    if Float.is_nan c then begin
      let c = estimate_subset est frag (subset_inputs inputs mask) in
      card_arr.(mask) <- c;
      c
    end
    else c
  in
  let permitted m = List.mem m allowed in
  (* The DP keeps, per subset, only the best cost plus a compact spec of
     how it is achieved; Physical nodes are built once at the end. This
     keeps the 3^n partition sweep allocation-free. *)
  let best_cost = Array.make (full + 1) Float.infinity in
  (* spec: -1 = unset, 0 = scan; otherwise (method, lmask) with lmask the
     Physical left role (hash build / NL outer). *)
  let best_spec : (Physical.join_method * int) option array = Array.make (full + 1) None in
  for i = 0 to n - 1 do
    let input = inputs.(i) in
    let raw = float_of_int (Table_stats.n_rows input.Fragment.stats) in
    best_cost.(bit i) <-
      Cost_model.scan ~rows:raw ~n_filters:(List.length input.Fragment.filters);
    best_spec.(bit i) <- Some (Physical.Nl, 0) (* placeholder; scans detected by mask size *);
    ignore (card (bit i))
  done;
  let singleton mask = mask land (mask - 1) = 0 in
  let index_join_cost ~outer_mask ~inner_mask ~out_rows =
    (* inner must be a single base input with a usable index *)
    if not (singleton inner_mask) then Float.nan
    else
      let inner = inputs.(bit_index inner_mask) in
      match usable_inner_key inner outer_mask inner_mask with
      | None -> Float.nan
      | Some inner_key ->
          let matches =
            index_matches inner inner_key
              ~outer_rows:(card outer_mask)
          in
          let inner_raw = float_of_int (Table_stats.n_rows inner.Fragment.stats) in
          best_cost.(outer_mask)
          +. Cost_model.index_nl_join ~outer_rows:(card outer_mask)
               ~inner_rows:inner_raw ~matches ~out_rows
  in
  (* [process] only writes [best_cost.(mask)] / [best_spec.(mask)] and
     reads strictly smaller masks, so distinct masks of one level can run
     on distinct pool workers. [em]/[pr] count candidates that improved
     the subset's best vs. candidates dominated at evaluation time. *)
  let process ~em ~pr mask =
    begin
      let out_rows = card mask in
      (* [try_spec] takes the spec fields apart so the winning pair is only
         allocated on an actual improvement, not per candidate *)
      let consider ~equi l r =
        let lr = card l and rr = card r in
        let try_spec cost method_ lmask =
          if cost < best_cost.(mask) then begin
            best_cost.(mask) <- cost;
            best_spec.(mask) <- Some (method_, lmask);
            incr em
          end
          else incr pr
        in
        if equi && permitted Physical.Hash then begin
          try_spec
            (best_cost.(l) +. best_cost.(r)
            +. Cost_model.hash_join ~build_rows:lr ~probe_rows:rr ~out_rows)
            Physical.Hash l;
          try_spec
            (best_cost.(l) +. best_cost.(r)
            +. Cost_model.hash_join ~build_rows:rr ~probe_rows:lr ~out_rows)
            Physical.Hash r
        end;
        if equi && permitted Physical.Index_nl then begin
          let cl = index_join_cost ~outer_mask:l ~inner_mask:r ~out_rows in
          if not (Float.is_nan cl) then try_spec cl Physical.Index_nl l;
          let cr = index_join_cost ~outer_mask:r ~inner_mask:l ~out_rows in
          if not (Float.is_nan cr) then try_spec cr Physical.Index_nl r
        end;
        (* NL is also the fallback of last resort, exactly as in
           [join_candidates]: without it, [allowed = [Index_nl]] and no
           usable index would leave [best_spec] unset and [build] would
           raise. An index join may or may not apply (it depends on the
           catalog), so the fallback keys on hash join availability. *)
        let hash_possible = equi && permitted Physical.Hash in
        if permitted Physical.Nl || (not equi) || not hash_possible then begin
          try_spec
            (best_cost.(l) +. best_cost.(r)
            +. Cost_model.nl_join ~outer_rows:lr ~inner_rows:rr ~out_rows)
            Physical.Nl l;
          try_spec
            (best_cost.(l) +. best_cost.(r)
            +. Cost_model.nl_join ~outer_rows:rr ~inner_rows:lr ~out_rows)
            Physical.Nl r
        end
      in
      let any_connected = ref false in
      let sub = ref ((mask - 1) land mask) in
      while !sub > 0 do
        let l = !sub and r = mask lxor !sub in
        if l < r && best_cost.(l) < Float.infinity && best_cost.(r) < Float.infinity
        then
          if crossing 0 l r then begin
            any_connected := true;
            consider ~equi:(crossing_equi 0 l r) l r
          end;
        sub := (!sub - 1) land mask
      done;
      if not !any_connected then begin
        (* cartesian partitions only when the subset is disconnected *)
        let sub = ref ((mask - 1) land mask) in
        while !sub > 0 do
          let l = !sub and r = mask lxor !sub in
          if l < r && best_cost.(l) < Float.infinity && best_cost.(r) < Float.infinity
          then consider ~equi:false l r;
          sub := (!sub - 1) land mask
        done
      end
    end
  in
  (* Level-wise enumeration (DPsize order): a subset only ever combines
     two strictly smaller subsets, so grouping masks by popcount leaves
     the DP unchanged — and gives the tracer one [dp-level] span per
     level, the natural unit for the planned parallel-DP work. *)
  let levels = Array.make (n + 1) [] in
  for mask = full downto 1 do
    let k = popcount mask in
    if k >= 2 then levels.(k) <- mask :: levels.(k)
  done;
  (* --- cross-step memo pre-pass ---------------------------------------
     A key captures everything the enumeration of a subset depends on:
     the estimator, the permitted methods, each input's provenance and
     epochs (registry stats epoch + the memo's per-alias epoch, bumped on
     temp registration), and the predicates internal to the subset. A hit
     therefore proves the identical deterministic sweep already ran, and
     seeding its winner is byte-identical to re-running [process]. *)
  let keys = Array.make (full + 1) "" in
  let hit = Array.make (full + 1) false in
  let memo_h0, memo_m0 =
    match memo with Some m -> (Dp_memo.hits m, Dp_memo.misses m) | None -> (0, 0)
  in
  (match memo with
  | None -> ()
  | Some memo ->
      let mname = function
        | Physical.Hash -> "h"
        | Physical.Index_nl -> "i"
        | Physical.Nl -> "n"
      in
      let prefix =
        est.Estimator.name ^ ":" ^ String.concat "" (List.map mname allowed) ^ ";"
      in
      let input_keys =
        Array.map
          (fun (i : Fragment.input) ->
            let alias_epoch =
              List.fold_left
                (fun acc a -> max acc (Dp_memo.alias_epoch memo a))
                0 i.Fragment.provides
            in
            Printf.sprintf "%s#%d@%d" i.Fragment.provenance i.Fragment.stats_epoch
              alias_epoch)
          inputs
      in
      let pred_strs = List.map (fun (p, m) -> (Expr.to_string p, m)) pred_masks in
      let key_of mask =
        let parts = ref [] in
        for i = n - 1 downto 0 do
          if mask land bit i <> 0 then parts := input_keys.(i) :: !parts
        done;
        let preds =
          List.filter_map
            (fun (s, m) -> if m <> 0 && m land mask = m then Some s else None)
            pred_strs
        in
        prefix
        ^ String.concat "|" (List.sort compare !parts)
        ^ "||"
        ^ String.concat "&" (List.sort compare preds)
      in
      (* reconstruct the winning partition's left mask from its aliases;
         an input is on the left iff its aliases are (all members move
         together, so the first suffices) *)
      let lmask_of_aliases left_aliases mask =
        let lm = ref 0 in
        for i = 0 to n - 1 do
          if mask land bit i <> 0 then
            match inputs.(i).Fragment.provides with
            | a :: _ when List.mem a left_aliases -> lm := !lm lor bit i
            | _ -> ()
        done;
        !lm
      in
      for level = 2 to n do
        List.iter
          (fun mask ->
            keys.(mask) <- key_of mask;
            match Dp_memo.find memo keys.(mask) with
            | Some (spec : Dp_memo.spec) ->
                let lmask = lmask_of_aliases spec.Dp_memo.left_aliases mask in
                if lmask <> 0 && lmask <> mask then begin
                  best_cost.(mask) <- spec.Dp_memo.cost;
                  best_spec.(mask) <- Some (spec.Dp_memo.method_, lmask);
                  card_arr.(mask) <- spec.Dp_memo.card;
                  hit.(mask) <- true
                end
            | None -> ())
          levels.(level)
      done);
  let sweep masks =
    let em = ref 0 and pr = ref 0 in
    List.iter (process ~em ~pr) masks;
    (!em, !pr)
  in
  for level = 2 to n do
    match levels.(level) with
    | [] -> ()
    | lmasks ->
        let t0 = Timer.now () in
        let n_subsets = List.length lmasks in
        (* cardinalities on the calling domain only: the estimator's
           per-input memo tables are not safe to share across workers *)
        List.iter (fun m -> ignore (card m)) lmasks;
        let misses = List.filter (fun m -> not hit.(m)) lmasks in
        let n_miss = List.length misses in
        let par =
          match pool with
          | Some p
            when Pool.size p > 1
                 && n_miss >= par_level_threshold
                 && n_miss >= 2 * Pool.size p ->
              Some p
          | _ -> None
        in
        let em, pr =
          match par with
          | Some p ->
              List.fold_left
                (fun (ea, pa) (e, pr') -> (ea + e, pa + pr'))
                (0, 0)
                (Pool.map p sweep (chunk_list (4 * Pool.size p) misses))
          | None -> sweep misses
        in
        Span.add spans Span.Dp_level
          ~args:
            [
              ("subsets", string_of_int n_subsets);
              ("emitted", string_of_int em);
              ("pruned", string_of_int pr);
              ("memo-hits", string_of_int (n_subsets - n_miss));
              ( "workers",
                string_of_int (match par with Some p -> Pool.size p | None -> 1) );
            ]
          (Printf.sprintf "dp-level-%d" level)
          ~start:t0
          ~dur:(Timer.now () -. t0)
  done;
  (match memo with
  | None -> ()
  | Some memo ->
      for level = 2 to n do
        List.iter
          (fun mask ->
            if not hit.(mask) then
              match best_spec.(mask) with
              | Some (method_, lmask) ->
                  let left_aliases =
                    List.sort compare
                      (List.concat_map
                         (fun (i : Fragment.input) -> i.Fragment.provides)
                         (subset_inputs inputs lmask))
                  in
                  Dp_memo.store memo keys.(mask)
                    {
                      Dp_memo.card = card_arr.(mask);
                      cost = best_cost.(mask);
                      method_;
                      left_aliases;
                    }
              | None -> ())
          levels.(level)
      done;
      Span.instant spans Span.Dp_memo
        ~args:
          [
            ("hits", string_of_int (Dp_memo.hits memo - memo_h0));
            ("misses", string_of_int (Dp_memo.misses memo - memo_m0));
            ("size", string_of_int (Dp_memo.size memo));
          ]
        "dp-memo");
  (* materialize the best plan bottom-up from the specs *)
  let rec build mask =
    if singleton mask then
      scan_node inputs.(bit_index mask) ~est_rows:(card mask)
    else
      match best_spec.(mask) with
      | None -> invalid_arg "Optimizer.dp_plan: no plan found"
      | Some (method_, lmask) ->
          let rmask = mask lxor lmask in
          let left = build lmask and right = build rmask in
          let preds = cross lmask rmask in
          let index =
            match method_ with
            | Physical.Index_nl -> (
                let inner = inputs.(bit_index rmask) in
                match usable_index catalog inner preds with
                | Some (ix, outer_key, inner_key, _) -> Some (ix, outer_key, inner_key)
                | None -> invalid_arg "Optimizer.dp_plan: index vanished")
            | _ -> None
          in
          Physical.join ~method_ ?index () ~left ~right ~preds ~est_rows:(card mask)
            ~est_cost:best_cost.(mask)
  in
  build full

(* --- greedy fallback for very wide fragments -------------------------- *)

let greedy_plan ~allowed catalog (est : Estimator.t) (frag : Fragment.t) =
  let planned =
    ref
      (List.map
         (fun i ->
           let rows = estimate_subset est frag [ i ] in
           (([ i ] : Fragment.input list), scan_node i ~est_rows:rows))
         frag.inputs)
  in
  while List.length !planned > 1 do
    let best = ref None in
    List.iteri
      (fun ai (a_inputs, ap) ->
        List.iteri
          (fun bi (b_inputs, bp) ->
            if ai < bi then begin
              let merged = a_inputs @ b_inputs in
              let sub = Fragment.restrict frag merged in
              let connecting =
                List.filter
                  (fun p ->
                    let rels = Expr.rels_of_pred p in
                    List.exists
                      (fun r ->
                        List.exists (fun i -> List.mem r i.Fragment.provides) a_inputs)
                      rels
                    && List.exists
                         (fun r ->
                           List.exists (fun i -> List.mem r i.Fragment.provides) b_inputs)
                         rels)
                  sub.Fragment.preds
              in
              if connecting <> [] || List.length !planned = 2 then begin
                let out_rows = estimate_subset est frag merged in
                match best_of (join_candidates ~allowed catalog ap bp connecting ~out_rows) with
                | Some cand -> (
                    match !best with
                    | Some (_, _, b) when b.Physical.est_cost <= cand.Physical.est_cost -> ()
                    | _ -> best := Some (ai, bi, cand))
                | None -> ()
              end
            end)
          !planned)
      !planned;
    match !best with
    | None ->
        (* fully disconnected step: merge the two smallest with a cartesian *)
        let sorted =
          List.sort
            (fun (_, a) (_, b) -> compare a.Physical.est_rows b.Physical.est_rows)
            !planned
        in
        let (ia, pa), (ib, pb) = (List.nth sorted 0, List.nth sorted 1) in
        let merged = ia @ ib in
        let out_rows = estimate_subset est frag merged in
        let cand = Option.get (best_of (join_candidates ~allowed catalog pa pb [] ~out_rows)) in
        planned :=
          (merged, cand)
          :: List.filter (fun (ins, _) -> ins != ia && ins != ib) !planned
    | Some (ai, bi, cand) ->
        let a_inputs = fst (List.nth !planned ai) in
        let b_inputs = fst (List.nth !planned bi) in
        planned :=
          (a_inputs @ b_inputs, cand)
          :: List.filteri (fun i _ -> i <> ai && i <> bi) !planned
  done;
  snd (List.hd !planned)

let optimize ?(allowed = [ Physical.Hash; Physical.Index_nl; Physical.Nl ]) ?spans
    ?pool ?memo catalog est frag =
  if frag.Fragment.inputs = [] then invalid_arg "Optimizer.optimize: empty fragment";
  let n = List.length frag.Fragment.inputs in
  let plan =
    if n <= dp_input_limit () then
      Span.span spans Span.Optimize
        ~args:[ ("inputs", string_of_int n) ]
        (Printf.sprintf "dp n=%d" n)
        (fun () -> dp_plan ?spans ?pool ?memo ~allowed catalog est frag)
    else
      Span.span spans Span.Optimize
        ~args:[ ("inputs", string_of_int n) ]
        (Printf.sprintf "greedy n=%d" n)
        (fun () -> greedy_plan ~allowed catalog est frag)
  in
  { plan; est_rows = plan.Physical.est_rows; est_cost = plan.Physical.est_cost }

(* --- re-costing a fixed plan under another estimator ------------------ *)

let cost_plan catalog est (frag : Fragment.t) plan =
  ignore catalog;
  let rec go (p : Physical.t) =
    match p.Physical.node with
    | Physical.Scan input ->
        let raw = float_of_int (Table_stats.n_rows input.Fragment.stats) in
        let rows = estimate_subset est frag [ input ] in
        let cost =
          Cost_model.scan ~rows:raw ~n_filters:(List.length input.Fragment.filters)
        in
        (rows, cost)
    | Physical.Join j -> (
        let lrows, lcost = go j.Physical.left in
        let rrows, rcost = go j.Physical.right in
        let out_rows =
          estimate_subset est frag
            (Physical.leaves j.Physical.left @ Physical.leaves j.Physical.right)
        in
        match j.Physical.method_ with
        | Physical.Hash ->
            ( out_rows,
              lcost +. rcost
              +. Cost_model.hash_join ~build_rows:lrows ~probe_rows:rrows ~out_rows )
        | Physical.Index_nl ->
            let inner_input =
              match j.Physical.right.Physical.node with
              | Physical.Scan i -> i
              | _ -> invalid_arg "cost_plan: index NL inner is not a scan"
            in
            let _, _, inner_key =
              match j.Physical.index with
              | Some (ix, ok, ik) -> (ix, ok, ik)
              | None -> invalid_arg "cost_plan: index NL without index"
            in
            let matches = index_matches inner_input inner_key ~outer_rows:lrows in
            let inner_raw = float_of_int (Table_stats.n_rows inner_input.Fragment.stats) in
            ( out_rows,
              lcost
              +. Cost_model.index_nl_join ~outer_rows:lrows ~inner_rows:inner_raw
                   ~matches ~out_rows )
        | Physical.Nl ->
            ( out_rows,
              lcost +. rcost
              +. Cost_model.nl_join ~outer_rows:lrows ~inner_rows:rrows ~out_rows ))
  in
  snd (go plan)
