(** Cost-based plan enumeration: dynamic programming over connected input
    subsets (DPsize/DPsub style), PostgreSQL-flavoured access-path and
    join-method selection.

    The estimator is a parameter — feeding {!Qs_stats.Estimator.default}
    gives the "Default" optimizer of the paper, the oracle gives "Optimal",
    and the noisy / learned / pessimistic variants give the corresponding
    baselines. Index nested-loop joins are only considered when the inner
    side is a single *base* input whose join column has a B+Tree in the
    catalog's current index configuration — materialized temporaries have
    no indexes, which is exactly the unrecoverable-hash-join effect of the
    paper's Figure 2. *)

module Catalog = Qs_storage.Catalog
module Fragment = Qs_stats.Fragment
module Estimator = Qs_stats.Estimator

type result = {
  plan : Physical.t;
  est_rows : float;
  est_cost : float;
}

val optimize : ?allowed:Physical.join_method list -> ?spans:Qs_util.Span.t ->
  Catalog.t -> Estimator.t -> Fragment.t -> result
(** Raises [Invalid_argument] on an empty fragment. [allowed] restricts
    the join methods considered (default: all three) — the USE baseline
    plans with hash joins only. Fragments with more
    than [dp_input_limit] inputs are planned greedily (cheapest-pair
    agglomeration) instead of by exact DP. Disconnected fragments get
    Cartesian (nested-loop) joins between their components, planned last.

    [spans] records one [optimize] span per call and, for the DP path,
    one nested [dp-level] span per popcount level of the subset
    enumeration (the DP runs level-wise — DPsize order — which is
    equivalent and is the unit a future parallel DP fans out). *)

val dp_input_limit : int

val cost_plan : Catalog.t -> Estimator.t -> Fragment.t -> Physical.t -> float
(** Re-derive the cumulative cost of a *fixed* plan shape under a
    different estimator (used by the FS robust-plan baseline: candidate
    plans are costed under perturbed cardinalities). *)

val estimate_subset : Estimator.t -> Fragment.t -> Fragment.input list -> float
(** The estimator's row count for a sub-join of the fragment. *)

val usable_index :
  Catalog.t -> Fragment.input -> Qs_query.Expr.pred list ->
  (Qs_storage.Index.t * Qs_query.Expr.colref * Qs_query.Expr.colref
  * Qs_query.Expr.pred)
  option
(** The first equality predicate with one side on [inner] whose inner
    column is indexed: [(index, outer_key, inner_key, pred)]. [None] for
    temp inputs, non-base inputs, predicates that are not equalities, or
    equalities where neither side belongs to [inner] (exposed for
    tests). *)
