(** Cost-based plan enumeration: dynamic programming over connected input
    subsets (DPsize/DPsub style), PostgreSQL-flavoured access-path and
    join-method selection.

    The estimator is a parameter — feeding {!Qs_stats.Estimator.default}
    gives the "Default" optimizer of the paper, the oracle gives "Optimal",
    and the noisy / learned / pessimistic variants give the corresponding
    baselines. Index nested-loop joins are only considered when the inner
    side is a single *base* input whose join column has a B+Tree in the
    catalog's current index configuration — materialized temporaries have
    no indexes, which is exactly the unrecoverable-hash-join effect of the
    paper's Figure 2. *)

module Catalog = Qs_storage.Catalog
module Fragment = Qs_stats.Fragment
module Estimator = Qs_stats.Estimator

type result = {
  plan : Physical.t;
  est_rows : float;
  est_cost : float;
}

val optimize : ?allowed:Physical.join_method list -> ?spans:Qs_util.Span.t ->
  ?pool:Qs_util.Pool.t -> ?memo:Dp_memo.t ->
  Catalog.t -> Estimator.t -> Fragment.t -> result
(** Raises [Invalid_argument] on an empty fragment. [allowed] restricts
    the join methods considered (default: all three) — the USE baseline
    plans with hash joins only. Fragments with more
    than [dp_input_limit ()] inputs are planned greedily (cheapest-pair
    agglomeration) instead of by exact DP. Disconnected fragments get
    Cartesian (nested-loop) joins between their components, planned last.

    [pool] parallelizes the DP level-by-level: within a popcount level
    the subset masks are partitioned into contiguous chunks across the
    pool's domains (each worker fills best-plan entries for its own
    masks against the immutable lower levels), so the chosen plan is
    byte-identical to the sequential enumeration. Cardinality estimation
    stays on the calling domain. The greedy path ignores [pool].

    [memo] is a cross-step DP memo ({!Dp_memo}): subsets whose key —
    input provenances, stats / alias epochs, internal predicates,
    estimator, permitted methods — already has an entry replay the
    memoized winner instead of re-enumerating; every freshly solved
    subset is stored. Because a key change forces a miss, plans with a
    memo are identical to plans without one.

    [spans] records one [optimize] span per call and, for the DP path,
    one nested [dp-level] span per popcount level of the subset
    enumeration carrying per-level candidate counts ([subsets],
    [emitted], [pruned], [memo-hits], [workers]), plus a [dp-memo]
    instant marker with the call's memo hit / miss counts when [memo]
    is given. *)

val dp_input_limit : unit -> int
(** Current DP width limit (number of inputs); fragments wider than this
    are planned greedily. Defaults to 13. *)

val set_dp_input_limit : int -> unit
(** Set the DP width limit (clamped to [>= 1]). Exposed as [--dp-limit]
    on bench and qsdemo. *)

val cost_plan : Catalog.t -> Estimator.t -> Fragment.t -> Physical.t -> float
(** Re-derive the cumulative cost of a *fixed* plan shape under a
    different estimator (used by the FS robust-plan baseline: candidate
    plans are costed under perturbed cardinalities). *)

val estimate_subset : Estimator.t -> Fragment.t -> Fragment.input list -> float
(** The estimator's row count for a sub-join of the fragment. *)

val usable_index :
  Catalog.t -> Fragment.input -> Qs_query.Expr.pred list ->
  (Qs_storage.Index.t * Qs_query.Expr.colref * Qs_query.Expr.colref
  * Qs_query.Expr.pred)
  option
(** The first equality predicate with one side on [inner] whose inner
    column is indexed: [(index, outer_key, inner_key, pred)]. [None] for
    temp inputs, non-base inputs, predicates that are not equalities, or
    equalities where neither side belongs to [inner] (exposed for
    tests). *)
