module Expr = Qs_query.Expr
module Fragment = Qs_stats.Fragment
module Index = Qs_storage.Index

type join_method = Hash | Index_nl | Nl

type t = {
  id : int;
  node : node;
  est_rows : float;
  est_cost : float;
  rels : string list;
}

and node =
  | Scan of Fragment.input
  | Join of join

and join = {
  method_ : join_method;
  left : t;
  right : t;
  preds : Expr.pred list;
  index : (Index.t * Expr.colref * Expr.colref) option;
}

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let scan input ~est_rows ~est_cost =
  {
    id = fresh_id ();
    node = Scan input;
    est_rows;
    est_cost;
    rels = input.Fragment.provides;
  }

let join ~method_ ?index () ~left ~right ~preds ~est_rows ~est_cost =
  (match (method_, index) with
  | Index_nl, None -> invalid_arg "Physical.join: Index_nl requires an index"
  | (Hash | Nl), Some _ -> invalid_arg "Physical.join: index only valid for Index_nl"
  | _ -> ());
  {
    id = fresh_id ();
    node = Join { method_; left; right; preds; index };
    est_rows;
    est_cost;
    rels = left.rels @ right.rels;
  }

let rec leaves t =
  match t.node with
  | Scan i -> [ i ]
  | Join j -> leaves j.left @ leaves j.right

let rec joins_post_order t =
  match t.node with
  | Scan _ -> []
  | Join j -> joins_post_order j.left @ joins_post_order j.right @ [ t ]

let deepest_join t =
  List.find_opt
    (fun n ->
      match n.node with
      | Join { left = { node = Scan _; _ }; right = { node = Scan _; _ }; _ } -> true
      | _ -> false)
    (joins_post_order t)

let rec find t id =
  if t.id = id then Some t
  else
    match t.node with
    | Scan _ -> None
    | Join j -> ( match find j.left id with Some n -> Some n | None -> find j.right id)

let rec replace t ~id ~by =
  if t.id = id then by
  else
    match t.node with
    | Scan _ -> t
    | Join j ->
        let left = replace j.left ~id ~by in
        let right = replace j.right ~id ~by in
        if left == j.left && right == j.right then t
        else
          {
            t with
            node = Join { j with left; right };
            rels = left.rels @ right.rels;
          }

let n_joins t = List.length (joins_post_order t)

(* Pipeline-breaker annotation for the morsel-driven executor: the child
   subtrees whose full result must exist before the parent's pipeline
   can start streaming. A hash join's build side feeds the hash table; a
   plain NL join rescans its inner side per outer row. Index-NL probes
   stream — the inner side is consumed through the index, not scanned —
   and a hash join's probe side is the pipeline itself. *)
let breaker_children t =
  match t.node with
  | Scan _ -> []
  | Join { method_ = Hash; left; _ } -> [ left ]
  | Join { method_ = Nl; right; _ } -> [ right ]
  | Join { method_ = Index_nl; _ } -> []

let rec breaker_edges t =
  match t.node with
  | Scan _ -> []
  | Join j ->
      List.map (fun (c : t) -> (t.id, c.id)) (breaker_children t)
      @ breaker_edges j.left @ breaker_edges j.right

(* Every breaker edge cuts one pipeline off the plan; what remains is
   one pipeline per cut plus the sink pipeline. *)
let n_pipelines t = List.length (breaker_edges t) + 1

let join_leaf_sets t =
  List.map (fun n -> List.sort compare n.rels) (joins_post_order t)

let rec nodes t =
  match t.node with
  | Scan _ -> [ t ]
  | Join j -> (t :: nodes j.left) @ nodes j.right

let method_name = function Hash -> "HashJoin" | Index_nl -> "IndexNLJoin" | Nl -> "NLJoin"

let to_string t =
  let buf = Buffer.create 256 in
  let rec go t indent =
    let pad = String.make (indent * 2) ' ' in
    (match t.node with
    | Scan i ->
        Buffer.add_string buf
          (Printf.sprintf "%sScan %s%s (rows=%.0f cost=%.1f)\n" pad i.Fragment.id
             (if i.Fragment.is_temp then " [temp]" else "")
             t.est_rows t.est_cost)
    | Join j ->
        let idx =
          match j.index with
          | Some (ix, _, _) -> " index=" ^ Index.name ix
          | None -> ""
        in
        Buffer.add_string buf
          (Printf.sprintf "%s%s on %s%s (rows=%.0f cost=%.1f)\n" pad
             (method_name j.method_)
             (String.concat " AND " (List.map Expr.to_string j.preds))
             idx t.est_rows t.est_cost);
        go j.left (indent + 1);
        go j.right (indent + 1))
  in
  go t 0;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
