let cpu_tuple = 0.01
let cpu_operator = 0.0025

let scan ~rows ~n_filters =
  rows *. (cpu_tuple +. (float_of_int n_filters *. cpu_operator))

let hash_join ~build_rows ~probe_rows ~out_rows =
  (build_rows *. 0.02) +. (probe_rows *. 0.012) +. (out_rows *. cpu_tuple)

(* A B+Tree descent costs noticeably more than one hash probe: pointer
   chasing through ~log nodes. This is what makes index NL join lose to
   hash join once the outer side grows — the trade-off Figure 2 of the
   paper turns on. *)
let btree_probe inner_rows = 0.05 +. (0.012 *. (log (Float.max 2.0 inner_rows) /. log 2.0))

let index_nl_join ~outer_rows ~inner_rows ~matches ~out_rows =
  (outer_rows *. btree_probe inner_rows) +. (matches *. cpu_operator)
  +. (out_rows *. cpu_tuple)

let nl_join ~outer_rows ~inner_rows ~out_rows =
  (outer_rows *. inner_rows *. cpu_operator) +. (out_rows *. cpu_tuple)

let materialize ~rows ~width = rows *. (0.005 +. (0.0005 *. float_of_int width))

let analyze ~rows ~width = rows *. 0.004 *. float_of_int width
