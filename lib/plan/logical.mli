(** Logical query trees, including the non-SPJ operators of §3.3.

    The SPJ core of a query is a {!Qs_query.Query.t}; non-SPJ operators
    (aggregation, UNION ALL, semi/anti join) segment the tree. QuerySplit
    and the baselines run on each SPJ segment; a non-SPJ operator's output
    is materialized and then referenced by its parent segment as if it were
    a base relation (its name appears as the [table] of a relation in the
    parent query, resolved against the driver's temp registry rather than
    the catalog). *)

module Expr = Qs_query.Expr
module Query = Qs_query.Query

type agg_fn = Count_star | Count | Sum | Min | Max | Avg

type agg = {
  fn : agg_fn;
  arg : Expr.scalar option;  (** None only for [Count_star] *)
  label : string;  (** output column name *)
}

type t =
  | Spj of Query.t
  | Agg of {
      name : string;  (** the pseudo-relation name of the output *)
      group_by : Expr.colref list;
      aggs : agg list;
      input : t;
    }
  | Union_all of { name : string; inputs : t list }
  | Semi of semi
  | Anti of semi
      (** EXISTS / NOT EXISTS: rows of [left] with (no) match in [right]. *)
  | Let of { bindings : t list; body : t }
      (** Evaluate each binding, expose its output under its {!name} as a
          pseudo base relation, then evaluate [body] — the plan-tree
          segmentation of Figure 7. *)

and semi = {
  name : string;
  left : t;
  right : t;
  on : Expr.pred list;  (** predicates between left and right aliases *)
}

val name : t -> string
(** The relation name under which the node's output is visible. For [Spj]
    it is the query name. *)

val is_spj : t -> bool

val children : t -> t list

val spj_count : t -> int
(** Number of SPJ segments in the tree. *)

val group_label : Expr.colref -> string
(** Output column name for a group-by key: ["rel_name"]. *)

val pp : Format.formatter -> t -> unit
