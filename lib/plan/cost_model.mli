(** The optimizer's cost model (PostgreSQL-flavoured, simplified to the
    operators this engine implements).

    Costs are abstract units roughly proportional to the wall-clock work of
    the in-memory executor; only relative magnitudes matter for plan
    choice. Child costs are *not* included here — the optimizer adds
    them. *)

val cpu_tuple : float
val cpu_operator : float

val scan : rows:float -> n_filters:int -> float
(** Full scan of an input applying its filters. *)

val hash_join : build_rows:float -> probe_rows:float -> out_rows:float -> float
(** Build a hash table on the build side, probe with the other. *)

val index_nl_join : outer_rows:float -> inner_rows:float -> matches:float ->
  out_rows:float -> float
(** One B+Tree probe per outer row; [matches] is the expected total number
    of index hits before residual filters. *)

val nl_join : outer_rows:float -> inner_rows:float -> out_rows:float -> float
(** Materialized inner rescan per outer row (the plain nested loop the
    optimizer falls back to for non-equi predicates). *)

val materialize : rows:float -> width:int -> float
(** Writing an intermediate result to a temp table. *)

val analyze : rows:float -> width:int -> float
(** Statistics collection over a materialized temp (§6.4 trade-off). *)
