module Stats_registry = Qs_stats.Stats_registry

(* [Computing] marks an in-flight computation; waiters park on [cond]
   and re-check after every state change. The computation itself runs
   outside the lock (it is an optimizer call — potentially milliseconds)
   so concurrent lookups of *other* keys proceed unhindered. *)
type 'a entry = Computing | Done of 'a

type 'a t = {
  mutex : Mutex.t;
  cond : Condition.t;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create 64;
    hits = 0;
    misses = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let rec find_or_compute t ~key f =
  let decision =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some (Done v) ->
            t.hits <- t.hits + 1;
            `Hit v
        | Some Computing ->
            (* coalesce: wait for the in-flight computation, then loop.
               The computer (or its failure cleanup) broadcasts [cond]. *)
            while
              match Hashtbl.find_opt t.tbl key with
              | Some Computing -> true
              | _ -> false
            do
              Condition.wait t.cond t.mutex
            done;
            `Retry
        | None ->
            Hashtbl.replace t.tbl key Computing;
            `Compute)
  in
  match decision with
  | `Hit v -> (v, true)
  | `Retry -> (
      (* the entry is now Done (count it as a coalesced hit) or gone
         (computation failed — race to become the new computer) *)
      match with_lock t (fun () -> Hashtbl.find_opt t.tbl key) with
      | Some (Done v) ->
          with_lock t (fun () -> t.hits <- t.hits + 1);
          (v, true)
      | _ -> find_or_compute t ~key f)
  | `Compute -> (
      match f () with
      | v ->
          with_lock t (fun () ->
              Hashtbl.replace t.tbl key (Done v);
              t.misses <- t.misses + 1;
              Condition.broadcast t.cond);
          (v, false)
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          with_lock t (fun () ->
              Hashtbl.remove t.tbl key;
              Condition.broadcast t.cond);
          Printexc.raise_with_backtrace e bt)

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)

let size t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ e n -> match e with Done _ -> n + 1 | _ -> n) t.tbl 0)

let clear t = with_lock t (fun () -> Hashtbl.reset t.tbl)

let stamp ~registry ~tables key =
  let stamps =
    List.sort_uniq compare tables
    |> List.map (fun tbl ->
           Printf.sprintf "%s#%d" tbl (Stats_registry.epoch registry tbl))
  in
  String.concat "|" (key :: stamps)
