module Expr = Qs_query.Expr
module Query = Qs_query.Query

type agg_fn = Count_star | Count | Sum | Min | Max | Avg

type agg = {
  fn : agg_fn;
  arg : Expr.scalar option;
  label : string;
}

type t =
  | Spj of Query.t
  | Agg of {
      name : string;
      group_by : Expr.colref list;
      aggs : agg list;
      input : t;
    }
  | Union_all of { name : string; inputs : t list }
  | Semi of semi
  | Anti of semi
  | Let of { bindings : t list; body : t }

and semi = {
  name : string;
  left : t;
  right : t;
  on : Expr.pred list;
}

let rec name = function
  | Spj q -> q.Query.name
  | Agg { name; _ } -> name
  | Union_all { name; _ } -> name
  | Semi { name; _ } | Anti { name; _ } -> name
  | Let { body; _ } -> name body

let is_spj = function Spj _ -> true | _ -> false

let children = function
  | Spj _ -> []
  | Agg { input; _ } -> [ input ]
  | Union_all { inputs; _ } -> inputs
  | Semi { left; right; _ } | Anti { left; right; _ } -> [ left; right ]
  | Let { bindings; body } -> bindings @ [ body ]

let rec spj_count t =
  match t with
  | Spj _ -> 1
  | _ -> List.fold_left (fun acc c -> acc + spj_count c) 0 (children t)

let group_label (c : Expr.colref) = c.Expr.rel ^ "_" ^ c.Expr.name

let fn_name = function
  | Count_star -> "COUNT(*)"
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Min -> "MIN"
  | Max -> "MAX"
  | Avg -> "AVG"

let rec pp fmt t =
  match t with
  | Spj q -> Format.fprintf fmt "SPJ %s" q.Query.name
  | Agg { name; group_by; aggs; input } ->
      Format.fprintf fmt "Agg %s [%s | %s] (%a)" name
        (String.concat ", " (List.map group_label group_by))
        (String.concat ", " (List.map (fun a -> fn_name a.fn ^ " AS " ^ a.label) aggs))
        pp input
  | Union_all { name; inputs } ->
      Format.fprintf fmt "UnionAll %s (%s)" name
        (String.concat " + "
           (List.map (fun i -> Format.asprintf "%a" pp i) inputs))
  | Semi { name; left; right; _ } ->
      Format.fprintf fmt "Semi %s (%a EXISTS %a)" name pp left pp right
  | Anti { name; left; right; _ } ->
      Format.fprintf fmt "Anti %s (%a NOT EXISTS %a)" name pp left pp right
  | Let { bindings; body } ->
      Format.fprintf fmt "Let [%s] in %a"
        (String.concat "; " (List.map (fun b -> Format.asprintf "%a" pp b) bindings))
        pp body
