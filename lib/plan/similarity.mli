(** Plan-similarity score (Table 1 of the paper).

    The score of two plans is the number of leaf relations in their largest
    common subtree, where a subtree is identified by the *set* of relations
    a join node covers (build/probe roles are ignored — swapping hash-join
    sides does not change what has been joined):

    - 0: the first joins of the plans share no relation at all;
    - 1: the first joins share exactly one scanned relation;
    - 2: the plans agree on the first join but diverge right after;
    - k > 2: a k-leaf join subtree is common to both plans. *)

val score : Physical.t -> Physical.t -> int

val bucket : int -> string
(** "0" | "1" | "2" | ">2" — the Table 1 buckets. *)
