(** Physical query plans.

    Every node carries the optimizer's row/cost estimates; the baselines'
    re-optimization triggers compare these against the actual counts the
    executor reports. Nodes have unique ids so a partially-executed plan
    can be rewritten in place (a materialized subtree replaced by a temp
    scan) without re-planning — the "continue with the current plan" path
    of Reopt/Pop. *)

module Expr = Qs_query.Expr
module Fragment = Qs_stats.Fragment
module Index = Qs_storage.Index

type join_method = Hash | Index_nl | Nl

type t = private {
  id : int;
  node : node;
  est_rows : float;
  est_cost : float;  (** cumulative, children included *)
  rels : string list;  (** aliases covered by this subtree *)
}

and node =
  | Scan of Fragment.input
  | Join of join

and join = {
  method_ : join_method;
  left : t;  (** Hash: build side; Index_nl / Nl: outer side *)
  right : t;  (** Hash: probe side; Index_nl: must be a base-input Scan *)
  preds : Expr.pred list;  (** all predicates applied at this join *)
  index : (Index.t * Expr.colref * Expr.colref) option;
      (** Index_nl only: (inner index, outer key column, inner key column) *)
}

val scan : Fragment.input -> est_rows:float -> est_cost:float -> t

val join : method_:join_method -> ?index:(Index.t * Expr.colref * Expr.colref) ->
  unit -> left:t -> right:t -> preds:Expr.pred list -> est_rows:float ->
  est_cost:float -> t

val leaves : t -> Fragment.input list

val joins_post_order : t -> t list
(** Join nodes in execution order (children before parents). *)

val deepest_join : t -> t option
(** The first join in execution order whose children are both leaves. *)

val find : t -> int -> t option

val replace : t -> id:int -> by:t -> t
(** Structural replacement of the node with the given id; estimate
    annotations above the replaced node are kept (they become stale, which
    is precisely what re-optimization triggers test against). *)

val n_joins : t -> int

val breaker_children : t -> t list
(** The pipeline breakers directly under this node: child subtrees whose
    whole result must be consumed (hash build, NL inner) before the
    node's own pipeline can start streaming morsels. Empty for scans and
    for index-NL joins, whose probes stream through the index. *)

val breaker_edges : t -> (int * int) list
(** Every (parent id, breaker-child id) edge of the plan — the cuts that
    partition the operator tree into pipelines. *)

val n_pipelines : t -> int
(** Number of pipeline segments the morsel-driven executor runs this
    plan as: one per breaker edge, plus the sink pipeline. *)

val join_leaf_sets : t -> string list list
(** For every join node: the sorted alias set it covers — the canonical
    form used for the plan-similarity score of Table 1. *)

val nodes : t -> t list
(** Every node of the tree (pre-order), scans included — the id universe
    an execution trace must cover. *)

val method_name : join_method -> string

val to_string : t -> string
(** Multi-line tree rendering. *)

val pp : Format.formatter -> t -> unit
