(** Cross-step DP memoization for {!Optimizer}.

    Re-optimizing strategies call the optimizer once per step on nearly
    the same join graph: after a subquery is executed and substituted,
    only the subsets overlapping the new temp have different cardinality
    inputs. A memo created per query and threaded through every optimize
    call lets unchanged subsets replay their previously chosen best
    subplan (cardinality, cost, join method and partition) instead of
    re-running the 3^n partition sweep.

    Invalidation is epoch-based, mirroring the paper's ANALYZE points:
    base inputs carry {!Qs_stats.Stats_registry.epoch} stamps
    (re-ANALYZE), and {!bump} advances per-alias epochs when a temp
    covering those aliases is registered. Both stamps are part of every
    key the optimizer derives, so stale entries can never be returned —
    they are simply never looked up again.

    Mutex-guarded; safe to consult from pool workers. *)

type spec = {
  card : float;  (** the estimator's cardinality for the subset *)
  cost : float;  (** best cumulative cost over the subset *)
  method_ : Physical.join_method;
  left_aliases : string list;
      (** sorted aliases of the winning partition's Physical-left side
          (hash build / NL outer) *)
}

type t

val create : unit -> t
(** A fresh memo; intended lifetime is one query (all re-opt steps). *)

val bump : t -> aliases:string list -> unit
(** Advance the epoch of each alias — called when a temp covering these
    aliases is registered, so every memoized subset touching them
    misses from now on. *)

val alias_epoch : t -> string -> int
(** Current epoch of an alias (0 until first {!bump}). The optimizer
    folds this into subset keys. *)

val find : t -> string -> spec option
(** Lookup; counts a hit or a miss. *)

val store : t -> string -> spec -> unit

val hits : t -> int
val misses : t -> int

val size : t -> int
(** Number of memoized subsets. *)
