(* Cross-step DP memoization. One memo lives for the duration of one
   query (all of its re-optimization steps); the optimizer consults it
   per subset of the join DP. Entries are keyed by a canonical string the
   optimizer derives from the subset's input provenances, their stats
   epochs, the memo's per-alias epochs, the predicates internal to the
   subset, the estimator and the permitted join methods — so a hit is a
   proof that the identical deterministic enumeration already ran, and
   replaying the stored winner is byte-identical to re-enumerating.

   The mutex follows the Scratch / Stats_registry pattern: harness cells
   never share a memo today (one per query), but strategies may consult
   it from pool workers, and the counters must merge race-free. *)

type spec = {
  card : float;  (** the estimator's cardinality for the subset *)
  cost : float;  (** best cumulative cost over the subset *)
  method_ : Physical.join_method;
  left_aliases : string list;
      (** sorted aliases of the winning partition's Physical-left side
          (hash build / NL outer); reconstructed into a mask on replay *)
}

type t = {
  mutex : Mutex.t;
  tbl : (string, spec) Hashtbl.t;
  alias_epochs : (string, int) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    mutex = Mutex.create ();
    tbl = Hashtbl.create 256;
    alias_epochs = Hashtbl.create 16;
    hits = 0;
    misses = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bump t ~aliases =
  with_lock t (fun () ->
      List.iter
        (fun a ->
          Hashtbl.replace t.alias_epochs a
            (1 + Option.value (Hashtbl.find_opt t.alias_epochs a) ~default:0))
        aliases)

let alias_epoch t alias =
  with_lock t (fun () ->
      Option.value (Hashtbl.find_opt t.alias_epochs alias) ~default:0)

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some _ as r ->
          t.hits <- t.hits + 1;
          r
      | None ->
          t.misses <- t.misses + 1;
          None)

let store t key spec = with_lock t (fun () -> Hashtbl.replace t.tbl key spec)
let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let size t = with_lock t (fun () -> Hashtbl.length t.tbl)
