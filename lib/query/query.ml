module Catalog = Qs_storage.Catalog
module Schema = Qs_storage.Schema

type rel = { alias : string; table : string }

type t = {
  name : string;
  rels : rel list;
  preds : Expr.pred list;
  output : Expr.colref list;
}

let make ?(name = "q") ?(output = []) rels preds =
  let aliases = List.map (fun r -> r.alias) rels in
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  (match dup aliases with
  | Some a -> invalid_arg ("Query.make: duplicate alias " ^ a)
  | None -> ());
  let check_ref ctx (c : Expr.colref) =
    if not (List.mem c.rel aliases) then
      invalid_arg (Printf.sprintf "Query.make: %s references unknown alias %s" ctx c.rel)
  in
  List.iter (fun p -> List.iter (check_ref (Expr.to_string p)) (Expr.cols_of_pred p)) preds;
  List.iter (check_ref "output") output;
  { name; rels; preds; output }

let validate cat t =
  let check_col (c : Expr.colref) table =
    let tbl = Catalog.table cat table in
    if Schema.find_by_name tbl.schema c.name = None then
      Error (Printf.sprintf "column %s.%s not in table %s" c.rel c.name table)
    else Ok ()
  in
  let table_of alias = (List.find (fun r -> r.alias = alias) t.rels).table in
  let all_refs =
    List.concat_map Expr.cols_of_pred t.preds @ t.output
  in
  List.fold_left
    (fun acc (c : Expr.colref) ->
      match acc with
      | Error _ as e -> e
      | Ok () -> (
          match List.find_opt (fun r -> r.alias = c.rel) t.rels with
          | None -> Error ("unknown alias " ^ c.rel)
          | Some _ ->
              if not (Catalog.mem_table cat (table_of c.rel)) then
                Error ("unknown table " ^ table_of c.rel)
              else check_col c (table_of c.rel)))
    (Ok ())
    all_refs
  |> fun res ->
  match res with
  | Error _ as e -> e
  | Ok () ->
      List.fold_left
        (fun acc r ->
          match acc with
          | Error _ as e -> e
          | Ok () ->
              if Catalog.mem_table cat r.table then Ok ()
              else Error ("unknown table " ^ r.table))
        (Ok ()) t.rels

let aliases t = List.map (fun r -> r.alias) t.rels

let table_of_alias t alias =
  match List.find_opt (fun r -> r.alias = alias) t.rels with
  | Some r -> r.table
  | None -> invalid_arg ("Query.table_of_alias: unknown alias " ^ alias)

let filters t alias =
  List.filter (fun p -> Expr.rels_of_pred p = [ alias ]) t.preds

let join_preds t = List.filter (fun p -> List.length (Expr.rels_of_pred p) >= 2) t.preds

let pred_mem p ps = List.exists (Expr.equal_pred p) ps

let is_subquery sub ~of_ =
  List.for_all (fun r -> List.mem r of_.rels) sub.rels
  && List.for_all (fun p -> pred_mem p of_.preds) sub.preds

let restrict ?name t keep =
  let rels = List.filter (fun r -> List.mem r.alias keep) t.rels in
  let preds =
    List.filter
      (fun p -> List.for_all (fun a -> List.mem a keep) (Expr.rels_of_pred p))
      t.preds
  in
  let output = List.filter (fun (c : Expr.colref) -> List.mem c.rel keep) t.output in
  let name = Option.value name ~default:t.name in
  make ~name ~output rels preds

(* Union-find over column references for equality transitivity. *)
let equiv_classes preds =
  let parent : (Expr.colref, Expr.colref) Hashtbl.t = Hashtbl.create 16 in
  let rec find c =
    match Hashtbl.find_opt parent c with
    | None -> c
    | Some p when p = c -> c
    | Some p ->
        let root = find p in
        Hashtbl.replace parent c root;
        root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  let members = Hashtbl.create 16 in
  let note c = if not (Hashtbl.mem members c) then Hashtbl.replace members c () in
  List.iter
    (fun p ->
      match Expr.join_sides p with
      | Some (a, b) ->
          note a;
          note b;
          union a b
      | None -> ())
    preds;
  let classes = Hashtbl.create 16 in
  Hashtbl.iter
    (fun c () ->
      let root = find c in
      let cur = Option.value (Hashtbl.find_opt classes root) ~default:[] in
      Hashtbl.replace classes root (c :: cur))
    members;
  Hashtbl.fold (fun _ cls acc -> cls :: acc) classes []

let implies ps p =
  pred_mem p ps
  ||
  match Expr.join_sides p with
  | None -> false
  | Some (a, b) ->
      List.exists (fun cls -> List.mem a cls && List.mem b cls) (equiv_classes ps)

let covers subs q =
  let union_rels = List.concat_map (fun s -> s.rels) subs in
  let union_preds = List.concat_map (fun s -> s.preds) subs in
  List.for_all (fun r -> List.mem r union_rels) q.rels
  && List.for_all (fun s -> is_subquery s ~of_:q) subs
  && List.for_all (fun p -> implies union_preds p) q.preds

let to_sql t =
  let out =
    match t.output with
    | [] -> "*"
    | cols -> String.concat ", " (List.map (fun (c : Expr.colref) -> c.rel ^ "." ^ c.name) cols)
  in
  let from =
    String.concat ", "
      (List.map (fun r -> Printf.sprintf "%s AS %s" r.table r.alias) t.rels)
  in
  let where =
    match t.preds with
    | [] -> ""
    | ps -> "\nWHERE " ^ String.concat "\n  AND " (List.map Expr.to_string ps)
  in
  Printf.sprintf "SELECT %s\nFROM %s%s;" out from where

let pp fmt t = Format.fprintf fmt "%s: %s" t.name (to_sql t)
