(** The directed join graph of §4.1.

    Vertices are the query's relation aliases; each equality join predicate
    becomes an edge. An edge points from the FK side (R-relation,
    "relationship") to the PK side (E-relation, "entity"); a join between
    two relations of the same kind is bidirectional. Redundant predicates —
    those implied by equality transitivity, i.e. forming cycles inside one
    column-equivalence class — are removed, preferentially dropping
    bidirectional edges (keeping the non-expanding PK–FK joins). *)

module Catalog = Qs_storage.Catalog

type kind = Directed | Bidirectional

type edge = {
  src : string;  (** for [Directed], the FK / relationship side *)
  dst : string;
  kind : kind;
  pred : Expr.pred;
}

type t = private {
  query : Query.t;
  vertices : string list;
  edges : edge list;  (** retained after redundancy removal *)
  dropped : Expr.pred list;  (** removed redundant join predicates *)
}

val build : Catalog.t -> Query.t -> t
(** Orientation comes from the catalog's FK constraints: predicate
    [a.x = b.y] is directed a→b when table(a).x is declared as a foreign
    key referencing table(b).y; b→a in the reverse case; bidirectional
    otherwise. *)

val reverse : t -> t
(** Flips every directed edge (the ECenter / PK-Center dual of §4.1). *)

val out_neighbors : t -> string -> string list
(** Distinct targets reachable over outgoing edges; bidirectional edges
    count as outgoing from both ends. *)

val has_outgoing : t -> string -> bool

val neighbors : t -> string -> string list
(** Targets ignoring direction. *)

val is_connected : t -> bool
(** Whether the retained edges connect all vertices (ignoring direction). *)

val pp : Format.formatter -> t -> unit
