(** A SQL front-end for the SPJ fragment this engine optimizes.

    Parses the dialect the Join Order Benchmark queries are written in:

    {v
    SELECT t.title, n.name
    FROM title AS t, cast_info AS ci, name AS n
    WHERE ci.movie_id = t.id
      AND ci.person_id = n.id
      AND t.production_year BETWEEN 1990 AND 2005
      AND n.name LIKE 'smith%'
      AND n.gender IS NOT NULL
      AND (t.kind_id = 1 OR t.kind_id = 2);
    v}

    Supported: comma-separated FROM with mandatory aliases ([AS] optional),
    [*] or qualified column projections, conjunctions of comparisons
    (=, <>, !=, <, <=, >, >=), [BETWEEN … AND …], [IN (…)], [LIKE],
    [NOT LIKE], [IS NULL / IS NOT NULL], parenthesised [OR] groups, and
    integer / float / single-quoted string literals. Keywords are
    case-insensitive. A trailing semicolon is optional.

    Not supported (by design — the engine's optimizer input is SPJ):
    subqueries, GROUP BY / aggregates (build a {!Qs_plan.Logical} tree for
    those), explicit JOIN syntax, arithmetic in predicates. *)

exception Parse_error of string
(** Raised with a human-readable message pointing at the offending
    token. *)

val parse : ?name:string -> string -> Query.t
(** [parse sql] builds the query; raises {!Parse_error} on malformed
    input and [Invalid_argument] if the query references an alias it does
    not declare. *)

val parse_result : ?name:string -> string -> (Query.t, string) result
(** Exception-free variant. *)
