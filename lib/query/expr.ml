module Value = Qs_storage.Value
module Schema = Qs_storage.Schema

type colref = { rel : string; name : string }

type arith = Add | Sub | Mul | Div

type scalar =
  | Col of colref
  | Const of Value.t
  | Arith of arith * scalar * scalar

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | Cmp of cmp * scalar * scalar
  | Between of scalar * Value.t * Value.t
  | In_list of scalar * Value.t list
  | Like of scalar * string
  | Is_null of scalar
  | Not_null of scalar
  | Or of pred list

let col rel name = Col { rel; name }
let vint i = Const (Value.Int i)
let vstr s = Const (Value.Str s)
let vfloat f = Const (Value.Float f)
let eq a b = Cmp (Eq, a, b)

let rec scalars_of_pred = function
  | Cmp (_, a, b) -> [ a; b ]
  | Between (s, _, _) | In_list (s, _) | Like (s, _) | Is_null s | Not_null s -> [ s ]
  | Or ps -> List.concat_map scalars_of_pred ps

let rec cols_of_scalar = function
  | Col c -> [ c ]
  | Const _ -> []
  | Arith (_, a, b) -> cols_of_scalar a @ cols_of_scalar b

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs
  |> List.rev

let rels_of_scalar s = dedup (List.map (fun c -> c.rel) (cols_of_scalar s))

let cols_of_pred p = dedup (List.concat_map cols_of_scalar (scalars_of_pred p))

let rels_of_pred p = dedup (List.map (fun c -> c.rel) (cols_of_pred p))

let join_sides = function
  | Cmp (Eq, Col a, Col b) when a.rel <> b.rel -> Some (a, b)
  | _ -> None

let is_single_rel p = List.length (rels_of_pred p) <= 1

let rec rename_scalar f = function
  | Col c -> Col { c with rel = f c.rel }
  | Const _ as s -> s
  | Arith (op, a, b) -> Arith (op, rename_scalar f a, rename_scalar f b)

let rec rename_rels f = function
  | Cmp (op, a, b) -> Cmp (op, rename_scalar f a, rename_scalar f b)
  | Between (s, lo, hi) -> Between (rename_scalar f s, lo, hi)
  | In_list (s, vs) -> In_list (rename_scalar f s, vs)
  | Like (s, pat) -> Like (rename_scalar f s, pat)
  | Is_null s -> Is_null (rename_scalar f s)
  | Not_null s -> Not_null (rename_scalar f s)
  | Or ps -> Or (List.map (rename_rels f) ps)

let rec eval_scalar schema row = function
  | Col { rel; name } -> row.(Schema.find_exn schema ~rel ~name)
  | Const v -> v
  | Arith (op, a, b) -> (
      let va = eval_scalar schema row a and vb = eval_scalar schema row b in
      if Value.is_null va || Value.is_null vb then Value.Null
      else
        match (va, vb) with
        | Value.Int x, Value.Int y -> (
            match op with
            | Add -> Value.Int (x + y)
            | Sub -> Value.Int (x - y)
            | Mul -> Value.Int (x * y)
            | Div -> if y = 0 then Value.Null else Value.Int (x / y))
        | _ ->
            let x = Value.as_float va and y = Value.as_float vb in
            let r =
              match op with
              | Add -> x +. y
              | Sub -> x -. y
              | Mul -> x *. y
              | Div -> if y = 0.0 then Float.nan else x /. y
            in
            if Float.is_nan r then Value.Null else Value.Float r)

(* LIKE: '%' matches any run (incl. empty), '_' any single char. Recursive
   descent with memo-free backtracking; patterns in the workloads are tiny. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match pattern.[pi] with
      | '%' ->
          (* collapse consecutive %; try every suffix *)
          if pi + 1 = np then true
          else
            let rec try_from k = k <= ns && (go (pi + 1) k || try_from (k + 1)) in
            try_from si
      | '_' -> si < ns && go (pi + 1) (si + 1)
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

let cmp_holds op a b =
  if Value.is_null a || Value.is_null b then false
  else
    let c = Value.compare a b in
    match op with
    | Eq -> c = 0
    | Ne -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0

let rec eval schema row = function
  | Cmp (op, a, b) -> cmp_holds op (eval_scalar schema row a) (eval_scalar schema row b)
  | Between (s, lo, hi) ->
      let v = eval_scalar schema row s in
      cmp_holds Ge v lo && cmp_holds Le v hi
  | In_list (s, vs) ->
      let v = eval_scalar schema row s in
      (not (Value.is_null v)) && List.exists (Value.equal v) vs
  | Like (s, pat) -> (
      match eval_scalar schema row s with
      | Value.Str str -> like_match ~pattern:pat str
      | _ -> false)
  | Is_null s -> Value.is_null (eval_scalar schema row s)
  | Not_null s -> not (Value.is_null (eval_scalar schema row s))
  | Or ps -> List.exists (eval schema row) ps

(* Normalize symmetric equality so pred-set comparisons are order-free. *)
let normalize = function
  | Cmp (Eq, a, b) when compare a b > 0 -> Cmp (Eq, b, a)
  | Cmp (Ne, a, b) when compare a b > 0 -> Cmp (Ne, b, a)
  | p -> p

let rec compare_pred a b =
  match (a, b) with
  | Or xs, Or ys -> List.compare compare_pred (List.map normalize xs) (List.map normalize ys)
  | _ -> compare (normalize a) (normalize b)

let equal_pred a b = compare_pred a b = 0

let arith_symbol = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec scalar_to_string = function
  | Col { rel; name } -> rel ^ "." ^ name
  | Const v -> Value.to_string v
  | Arith (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (scalar_to_string a) (arith_symbol op)
        (scalar_to_string b)

let cmp_symbol = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec to_string = function
  | Cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (scalar_to_string a) (cmp_symbol op) (scalar_to_string b)
  | Between (s, lo, hi) ->
      Printf.sprintf "%s BETWEEN %s AND %s" (scalar_to_string s) (Value.to_string lo)
        (Value.to_string hi)
  | In_list (s, vs) ->
      Printf.sprintf "%s IN (%s)" (scalar_to_string s)
        (String.concat ", " (List.map Value.to_string vs))
  | Like (s, pat) -> Printf.sprintf "%s LIKE '%s'" (scalar_to_string s) pat
  | Is_null s -> scalar_to_string s ^ " IS NULL"
  | Not_null s -> scalar_to_string s ^ " IS NOT NULL"
  | Or ps -> "(" ^ String.concat " OR " (List.map to_string ps) ^ ")"

let pp fmt p = Format.pp_print_string fmt (to_string p)
