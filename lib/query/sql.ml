module Value = Qs_storage.Value

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Comma
  | Dot
  | Star
  | Lparen
  | Rparen
  | Semicolon
  | Op of string  (* = <> != < <= > >= *)
  | Eof

let keyword s =
  match String.lowercase_ascii s with
  | ("select" | "from" | "where" | "as" | "and" | "or" | "between" | "in" | "like"
    | "not" | "is" | "null") as k ->
      Some k
  | _ -> None

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !i)) in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = ',' then (emit Comma; incr i)
    else if c = '.' && not (!i + 1 < n && input.[!i + 1] >= '0' && input.[!i + 1] <= '9')
    then (emit Dot; incr i)
    else if c = '*' then (emit Star; incr i)
    else if c = '(' then (emit Lparen; incr i)
    else if c = ')' then (emit Rparen; incr i)
    else if c = ';' then (emit Semicolon; incr i)
    else if c = '\'' then begin
      (* single-quoted string; '' escapes a quote *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then (Buffer.add_char buf '\''; i := !i + 2)
          else (closed := true; incr i)
        else (Buffer.add_char buf input.[!i]; incr i)
      done;
      if not !closed then fail "unterminated string literal";
      emit (Str_lit (Buffer.contents buf))
    end
    else if c = '<' || c = '>' || c = '=' || c = '!' then begin
      let two =
        if !i + 1 < n then String.sub input !i 2 else String.make 1 c
      in
      match two with
      | "<=" | ">=" | "<>" | "!=" ->
          emit (Op two);
          i := !i + 2
      | _ ->
          if c = '!' then fail "unexpected '!'";
          emit (Op (String.make 1 c));
          incr i
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && input.[!i + 1] >= '0' && input.[!i + 1] <= '9')
    then begin
      let start = !i in
      if c = '-' then incr i;
      let saw_dot = ref false in
      while
        !i < n
        && ((input.[!i] >= '0' && input.[!i] <= '9')
           || (input.[!i] = '.' && not !saw_dot))
      do
        if input.[!i] = '.' then saw_dot := true;
        incr i
      done;
      let text = String.sub input start (!i - start) in
      if !saw_dot then emit (Float_lit (float_of_string text))
      else emit (Int_lit (int_of_string text))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (Ident (String.sub input start (!i - start)))
    end
    else fail (Printf.sprintf "unexpected character %C" c)
  done;
  emit Eof;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : token list }

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Comma -> "','"
  | Dot -> "'.'"
  | Star -> "'*'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Semicolon -> "';'"
  | Op o -> Printf.sprintf "operator %s" o
  | Eof -> "end of input"

let peek st = match st.toks with t :: _ -> t | [] -> Eof

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st t =
  if peek st = t then advance st
  else raise (Parse_error (Printf.sprintf "expected %s, found %s" (token_name t) (token_name (peek st))))

(* keyword test on the upcoming identifier *)
let at_kw st k =
  match peek st with Ident s -> keyword s = Some k | _ -> false

let eat_kw st k =
  if at_kw st k then advance st
  else raise (Parse_error (Printf.sprintf "expected %s, found %s" (String.uppercase_ascii k) (token_name (peek st))))

let ident st =
  match peek st with
  | Ident s when keyword s = None ->
      advance st;
      s
  | t -> raise (Parse_error ("expected identifier, found " ^ token_name t))

let colref st =
  let rel = ident st in
  expect st Dot;
  let name = ident st in
  { Expr.rel; name }

let literal st =
  match peek st with
  | Int_lit i -> advance st; Value.Int i
  | Float_lit f -> advance st; Value.Float f
  | Str_lit s -> advance st; Value.Str s
  | Ident s when keyword s = Some "null" -> advance st; Value.Null
  | t -> raise (Parse_error ("expected literal, found " ^ token_name t))

let cmp_of = function
  | "=" -> Expr.Eq
  | "<>" | "!=" -> Expr.Ne
  | "<" -> Expr.Lt
  | "<=" -> Expr.Le
  | ">" -> Expr.Gt
  | ">=" -> Expr.Ge
  | o -> raise (Parse_error ("unknown operator " ^ o))

(* one simple predicate: col OP (col|lit) | col BETWEEN l AND l
   | col [NOT] LIKE 'pat' | col [NOT] IN (l, …) | col IS [NOT] NULL *)
let rec simple_pred st =
  let c = colref st in
  let lhs = Expr.Col c in
  match peek st with
  | Op o ->
      advance st;
      let op = cmp_of o in
      let rhs =
        match peek st with
        | Ident _ -> Expr.Col (colref st)
        | _ -> Expr.Const (literal st)
      in
      Expr.Cmp (op, lhs, rhs)
  | Ident s when keyword s = Some "between" ->
      advance st;
      let lo = literal st in
      eat_kw st "and";
      let hi = literal st in
      Expr.Between (lhs, lo, hi)
  | Ident s when keyword s = Some "like" ->
      advance st;
      (match literal st with
      | Value.Str pat -> Expr.Like (lhs, pat)
      | _ -> raise (Parse_error "LIKE expects a string literal"))
  | Ident s when keyword s = Some "not" ->
      advance st;
      if at_kw st "like" then begin
        advance st;
        match literal st with
        | Value.Str pat ->
            (* NOT LIKE is expressed as an OR-free negation we do not
               support in pred form; reject with a clear message *)
            raise (Parse_error ("NOT LIKE '" ^ pat ^ "' is not supported"))
        | _ -> raise (Parse_error "LIKE expects a string literal")
      end
      else if at_kw st "in" then in_list st lhs
      else raise (Parse_error "expected LIKE or IN after NOT")
  | Ident s when keyword s = Some "in" -> in_list st lhs
  | Ident s when keyword s = Some "is" ->
      advance st;
      if at_kw st "not" then begin
        advance st;
        eat_kw st "null";
        Expr.Not_null lhs
      end
      else begin
        eat_kw st "null";
        Expr.Is_null lhs
      end
  | t -> raise (Parse_error ("expected predicate operator, found " ^ token_name t))

and in_list st lhs =
  eat_kw st "in";
  expect st Lparen;
  let rec values acc =
    let v = literal st in
    if peek st = Comma then begin
      advance st;
      values (v :: acc)
    end
    else List.rev (v :: acc)
  in
  let vs = values [] in
  expect st Rparen;
  Expr.In_list (lhs, vs)

(* a conjunct: simple predicate, or a parenthesised OR-group of them *)
let conjunct st =
  if peek st = Lparen then begin
    advance st;
    let rec ors acc =
      let p = simple_pred st in
      if at_kw st "or" then begin
        advance st;
        ors (p :: acc)
      end
      else List.rev (p :: acc)
    in
    let ps = ors [] in
    expect st Rparen;
    match ps with [ p ] -> p | ps -> Expr.Or ps
  end
  else simple_pred st

let parse ?(name = "sql") input =
  let st = { toks = lex input } in
  eat_kw st "select";
  let output =
    if peek st = Star then begin
      advance st;
      []
    end
    else begin
      let rec cols acc =
        let c = colref st in
        if peek st = Comma then begin
          advance st;
          cols (c :: acc)
        end
        else List.rev (c :: acc)
      in
      cols []
    end
  in
  eat_kw st "from";
  let rec rels acc =
    let table = ident st in
    let alias =
      if at_kw st "as" then begin
        advance st;
        ident st
      end
      else
        match peek st with
        | Ident s when keyword s = None ->
            advance st;
            s
        | _ -> table
    in
    let acc = { Query.alias; table } :: acc in
    if peek st = Comma then begin
      advance st;
      rels acc
    end
    else List.rev acc
  in
  let rels = rels [] in
  let preds =
    if at_kw st "where" then begin
      advance st;
      let rec conj acc =
        let p = conjunct st in
        if at_kw st "and" then begin
          advance st;
          conj (p :: acc)
        end
        else List.rev (p :: acc)
      in
      conj []
    end
    else []
  in
  if peek st = Semicolon then advance st;
  (match peek st with
  | Eof -> ()
  | t -> raise (Parse_error ("unexpected trailing " ^ token_name t)));
  Query.make ~name ~output rels preds

let parse_result ?name input =
  match parse ?name input with
  | q -> Ok q
  | exception Parse_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg
