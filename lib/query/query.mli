(** SPJ queries in the paper's normal form q(R, P) (§3.2).

    A query is a set of base-relation instances (alias → table) and a set of
    conjunct predicates over the aliases, plus an output projection. The
    cover relation of Definition 1 — the correctness condition for any
    Query Splitting Algorithm — is implemented here. *)

module Catalog = Qs_storage.Catalog

type rel = { alias : string; table : string }

type t = private {
  name : string;  (** display identifier, e.g. "job_17b" *)
  rels : rel list;
  preds : Expr.pred list;
  output : Expr.colref list;  (** empty means "all columns" *)
}

val make : ?name:string -> ?output:Expr.colref list -> rel list -> Expr.pred list -> t
(** Raises [Invalid_argument] on duplicate aliases, or predicates/outputs
    referencing an alias that is not in the relation list. *)

val validate : Catalog.t -> t -> (unit, string) result
(** Checks every table exists and every referenced column exists in the
    aliased table's schema. *)

val aliases : t -> string list

val table_of_alias : t -> string -> string
(** Raises [Invalid_argument] for an unknown alias. *)

val filters : t -> string -> Expr.pred list
(** Single-relation predicates on the given alias. *)

val join_preds : t -> Expr.pred list
(** Predicates touching two or more aliases. *)

val is_subquery : t -> of_:t -> bool
(** R' ⊆ R and P' ⊆ P (predicates modulo symmetric equality). *)

val restrict : ?name:string -> t -> string list -> t
(** [restrict q aliases] is the subquery of [q] induced by the alias set:
    those relations plus every predicate fully contained in the set. *)

val equiv_classes : Expr.pred list -> Expr.colref list list
(** Equivalence classes of column references under the equality join
    predicates (transitivity), used both by cover-checking and by the join
    graph's redundant-edge removal. *)

val implies : Expr.pred list -> Expr.pred -> bool
(** [implies ps p]: [p] is a member of [ps] (modulo symmetric equality) or
    is a column equality that follows from the equality classes of [ps]. *)

val covers : t list -> t -> bool
(** Definition 1: the subquery set covers the query — every relation
    appears, and the union of predicates logically implies every original
    predicate. *)

val to_sql : t -> string
(** SQL-ish rendering for demos and docs. *)

val pp : Format.formatter -> t -> unit
