module Catalog = Qs_storage.Catalog

type kind = Directed | Bidirectional

type edge = {
  src : string;
  dst : string;
  kind : kind;
  pred : Expr.pred;
}

type t = {
  query : Query.t;
  vertices : string list;
  edges : edge list;
  dropped : Expr.pred list;
}

let orient cat query (a : Expr.colref) (b : Expr.colref) =
  let ta = Query.table_of_alias query a.rel and tb = Query.table_of_alias query b.rel in
  let is_fk ~from_table ~from_column ~to_table ~to_column =
    List.exists
      (fun (fk : Catalog.fk) ->
        fk.from_table = from_table && fk.from_column = from_column
        && fk.to_table = to_table && fk.to_column = to_column)
      (Catalog.fks cat)
  in
  if is_fk ~from_table:ta ~from_column:a.name ~to_table:tb ~to_column:b.name then
    `Directed (a.rel, b.rel)
  else if is_fk ~from_table:tb ~from_column:b.name ~to_table:ta ~to_column:a.name then
    `Directed (b.rel, a.rel)
  else `Bidirectional (a.rel, b.rel)

(* Remove predicates made redundant by equality transitivity: inside each
   column-equivalence class, keep only a spanning forest of the class's join
   predicates, keeping directed (PK–FK) edges in preference to bidirectional
   ones (§4.1). Non-equality join predicates are never redundant here. *)
let remove_redundant edges =
  let module UF = struct
    let parent : (Expr.colref, Expr.colref) Hashtbl.t = Hashtbl.create 16

    let rec find c =
      match Hashtbl.find_opt parent c with
      | None -> c
      | Some p when p = c -> c
      | Some p ->
          let root = find p in
          Hashtbl.replace parent c root;
          root

    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then (
        Hashtbl.replace parent ra rb;
        true)
      else false
  end in
  let eq_edges, other_edges =
    List.partition (fun e -> Expr.join_sides e.pred <> None) edges
  in
  (* Directed first so they win the spanning forest. *)
  let ordered =
    List.stable_sort
      (fun a b ->
        match (a.kind, b.kind) with
        | Directed, Bidirectional -> -1
        | Bidirectional, Directed -> 1
        | _ -> 0)
      eq_edges
  in
  let kept, dropped =
    List.fold_left
      (fun (kept, dropped) e ->
        match Expr.join_sides e.pred with
        | Some (a, b) ->
            if UF.union a b then (e :: kept, dropped) else (kept, e.pred :: dropped)
        | None -> assert false)
      ([], []) ordered
  in
  (List.rev kept @ other_edges, List.rev dropped)

let build cat query =
  let vertices = Query.aliases query in
  let edges =
    List.filter_map
      (fun p ->
        match Expr.rels_of_pred p with
        | [ _; _ ] -> (
            match Expr.join_sides p with
            | Some (a, b) -> (
                match orient cat query a b with
                | `Directed (src, dst) -> Some { src; dst; kind = Directed; pred = p }
                | `Bidirectional (src, dst) ->
                    Some { src; dst; kind = Bidirectional; pred = p })
            | None ->
                (* non-equality join predicate: undirected, never redundant *)
                let rels = Expr.rels_of_pred p in
                Some
                  {
                    src = List.nth rels 0;
                    dst = List.nth rels 1;
                    kind = Bidirectional;
                    pred = p;
                  })
        | _ -> None)
      query.Query.preds
  in
  let edges, dropped = remove_redundant edges in
  { query; vertices; edges; dropped }

let reverse t =
  {
    t with
    edges =
      List.map
        (fun e ->
          match e.kind with
          | Directed -> { e with src = e.dst; dst = e.src }
          | Bidirectional -> e)
        t.edges;
  }

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs |> List.rev

let out_neighbors t v =
  List.filter_map
    (fun e ->
      if e.src = v then Some e.dst
      else if e.kind = Bidirectional && e.dst = v then Some e.src
      else None)
    t.edges
  |> dedup

let has_outgoing t v = out_neighbors t v <> []

let neighbors t v =
  List.filter_map
    (fun e ->
      if e.src = v then Some e.dst else if e.dst = v then Some e.src else None)
    t.edges
  |> dedup

let is_connected t =
  match t.vertices with
  | [] -> true
  | first :: _ ->
      let visited = Hashtbl.create 16 in
      let rec dfs v =
        if not (Hashtbl.mem visited v) then (
          Hashtbl.replace visited v ();
          List.iter dfs (neighbors t v))
      in
      dfs first;
      List.for_all (Hashtbl.mem visited) t.vertices

let pp fmt t =
  Format.fprintf fmt "join graph over {%s}@." (String.concat ", " t.vertices);
  List.iter
    (fun e ->
      let arrow = match e.kind with Directed -> "->" | Bidirectional -> "<->" in
      Format.fprintf fmt "  %s %s %s  (%s)@." e.src arrow e.dst (Expr.to_string e.pred))
    t.edges;
  if t.dropped <> [] then
    Format.fprintf fmt "  dropped: %s@."
      (String.concat "; " (List.map Expr.to_string t.dropped))
