(** Scalar expressions and predicates.

    A query's WHERE clause is kept as a *set* of conjunct predicates
    (conjunctive normal form at the top level); each conjunct is either a
    single-relation filter or a join predicate between two relations. This
    set form is what the Query Splitting Algorithm divides (§3.2). *)

module Value = Qs_storage.Value
module Schema = Qs_storage.Schema

type colref = { rel : string; name : string }
(** Column reference, qualified by the relation *alias* it comes from. *)

type arith = Add | Sub | Mul | Div

type scalar =
  | Col of colref
  | Const of Value.t
  | Arith of arith * scalar * scalar

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | Cmp of cmp * scalar * scalar
  | Between of scalar * Value.t * Value.t  (* inclusive *)
  | In_list of scalar * Value.t list
  | Like of scalar * string  (* SQL LIKE: '%' = any run, '_' = any char *)
  | Is_null of scalar
  | Not_null of scalar
  | Or of pred list  (* disjunction of conjunct-free predicates *)

val col : string -> string -> scalar
(** [col rel name] is a column reference. *)

val vint : int -> scalar
val vstr : string -> scalar
val vfloat : float -> scalar

val eq : scalar -> scalar -> pred
(** Equality conjunct; [eq (col a x) (col b y)] is a join predicate when
    [a <> b]. *)

val rels_of_scalar : scalar -> string list

val rels_of_pred : pred -> string list
(** Distinct relation aliases referenced, in first-appearance order. *)

val cols_of_pred : pred -> colref list
(** Distinct column references used by the predicate. *)

val join_sides : pred -> (colref * colref) option
(** [Some (a, b)] when the predicate is a pure column-to-column equality
    between two different relations — the join predicates the join graph is
    built from. *)

val is_single_rel : pred -> bool
(** True when the predicate touches at most one relation (a filter). *)

val rename_rels : (string -> string) -> pred -> pred
(** Rewrites every column qualifier through the mapping (identity for
    unmapped aliases); used when materialized temps adopt base aliases. *)

val eval_scalar : Schema.t -> Value.t array -> scalar -> Value.t
(** Raises [Invalid_argument] if a referenced column is absent from the
    schema. Arithmetic on NULL yields NULL. *)

val eval : Schema.t -> Value.t array -> pred -> bool
(** SQL-style evaluation: any comparison against NULL is not-true. *)

val like_match : pattern:string -> string -> bool
(** The LIKE matcher, exposed for testing. *)

val compare_pred : pred -> pred -> int
(** Structural order with symmetric equality conjuncts normalized, so that
    [a.x = b.y] and [b.y = a.x] compare equal. *)

val equal_pred : pred -> pred -> bool

val to_string : pred -> string
val pp : Format.formatter -> pred -> unit
val scalar_to_string : scalar -> string
