(* bench_diff: compare two metrics-JSON dumps written by
   [bench --metrics-out] (or the committed BENCH_*.json artifacts) with
   a relative threshold.

     dune exec tools/bench_diff/bench_diff.exe -- old.json new.json
     dune exec tools/bench_diff/bench_diff.exe -- --threshold 0.1 a.json b.json
     dune exec tools/bench_diff/bench_diff.exe -- --counters-only a.json b.json

   [--counters-only] drops every histogram before diffing, comparing only
   the deterministic counters (queries, timeouts, replans,
   materializations, memo hits...) — the machine-independent subset, used
   by tools/check.sh to gate committed BENCH_*.json baselines without
   tripping on wall-clock noise.

   Exit status: 0 = within threshold, 1 = regressions (or metrics gone
   missing / workload size changed), 2 = usage or parse error. *)

module Metrics_diff = Qs_obs.Metrics_diff

let usage = "usage: bench_diff [--threshold REL] [--counters-only] OLD.json NEW.json"

(* keep only each strategy's "counters" member, so histogram drift (means
   of times/bytes/q-error, which vary by machine and by sampled workload)
   never fails the deterministic gate *)
let counters_only = function
  | Metrics_diff.Obj strategies ->
      Metrics_diff.Obj
        (List.map
           (fun (label, entry) ->
             match entry with
             | Metrics_diff.Obj members ->
                 (label, Metrics_diff.Obj (List.filter (fun (k, _) -> k = "counters") members))
             | other -> (label, other))
           strategies)
  | other -> other

let fail_usage msg =
  prerr_endline msg;
  prerr_endline usage;
  exit 2

let load path =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> fail_usage ("bench_diff: " ^ msg)
  in
  match Metrics_diff.parse text with
  | Ok json -> json
  | Error msg -> fail_usage (Printf.sprintf "bench_diff: %s: %s" path msg)

let () =
  let threshold = ref 0.2 in
  let counters = ref false in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> threshold := f
        | _ -> fail_usage ("bench_diff: bad threshold " ^ v));
        parse_args rest
    | "--threshold" :: [] -> fail_usage "bench_diff: --threshold needs a value"
    | "--counters-only" :: rest ->
        counters := true;
        parse_args rest
    | f :: rest ->
        files := !files @ [ f ];
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  match !files with
  | [ old_path; new_path ] ->
      let old_ = load old_path and new_ = load new_path in
      let old_, new_ =
        if !counters then (counters_only old_, counters_only new_)
        else (old_, new_)
      in
      let report = Metrics_diff.diff ~threshold:!threshold ~old_ ~new_ () in
      print_string (Metrics_diff.render report);
      if report.Metrics_diff.regressions <> [] || report.Metrics_diff.missing <> []
      then exit 1
  | _ -> fail_usage "bench_diff: expected exactly two files"
