#!/bin/sh
# Fail the build when unsafe casts (Obj.magic / Obj.repr / Obj.obj) appear
# in library, binary or bench sources. The typed Scratch cache exists
# precisely so nothing needs them; new uses must extend ALLOW below with a
# justification.
#
# Allow-list entries only *mention* Obj in documentation comments:
#   lib/util/scratch.ml / .mli — docs explaining what Scratch replaces.
set -eu

ALLOW="lib/util/scratch.ml lib/util/scratch.mli"

status=0
for f in $(find lib bin bench \( -name '*.ml' -o -name '*.mli' \) | sort); do
  skip=0
  for a in $ALLOW; do
    [ "$f" = "$a" ] && skip=1
  done
  [ $skip -eq 1 ] && continue
  if grep -nE 'Obj\.(magic|repr|obj)' "$f"; then
    echo "lint: unsafe Obj cast in $f (see tools/lint_unsafe.sh)" >&2
    status=1
  fi
done
exit $status
