#!/bin/sh
# Fail the build when unsafe patterns appear in library, binary or bench
# sources:
#
#   1. Obj.magic / Obj.repr / Obj.obj — the typed Scratch cache exists
#      precisely so nothing needs them; new uses must extend ALLOW below
#      with a justification.
#   2. Direct `.rows` record access — Table stores rows in chunks; every
#      caller outside lib/storage must go through the chunk API
#      (Table.chunk / iter / row / to_rows) so scans stay shardable.
#      (`Naive.rows` is a function call, not a field access, and is
#      excluded.)
#   3. Direct Chunk_file access — spilled chunks are read through the
#      Buffer_pool (pinning, eviction, prefetch coalescing); a raw
#      Chunk_file.read outside lib/storage would bypass all of it.
#
# Allow-list entries only *mention* Obj in documentation comments:
#   lib/util/scratch.ml / .mli — docs explaining what Scratch replaces.
set -eu

ALLOW="lib/util/scratch.ml lib/util/scratch.mli"

status=0
for f in $(find lib bin bench \( -name '*.ml' -o -name '*.mli' \) | sort); do
  skip=0
  for a in $ALLOW; do
    [ "$f" = "$a" ] && skip=1
  done
  [ $skip -eq 1 ] && continue
  if grep -nE 'Obj\.(magic|repr|obj)' "$f"; then
    echo "lint: unsafe Obj cast in $f (see tools/lint_unsafe.sh)" >&2
    status=1
  fi
  case "$f" in
    lib/storage/*) continue ;;
  esac
  if grep -nE '\.rows\b' "$f" | grep -vE '(Naive|Qs_exec\.Naive)\.rows'; then
    echo "lint: direct Table .rows access in $f — use the chunk API (see tools/lint_unsafe.sh)" >&2
    status=1
  fi
  if grep -nE 'Chunk_file\.' "$f"; then
    echo "lint: direct chunk-file access in $f — spilled chunks are read through Buffer_pool/Table (see tools/lint_unsafe.sh)" >&2
    status=1
  fi
done
exit $status
