#!/bin/sh
# Fail the build when unsafe patterns appear in library, binary or bench
# sources:
#
#   1. Obj.magic / Obj.repr / Obj.obj — the typed Scratch cache exists
#      precisely so nothing needs them; new uses must extend ALLOW below
#      with a justification.
#   2. Direct `.rows` record access — Table stores rows in chunks; every
#      caller outside lib/storage must go through the chunk API
#      (Table.chunk / iter / row / to_rows) so scans stay shardable.
#      (`Naive.rows` and `Chunk.rows` are function calls, not field
#      accesses, and are excluded.)
#   3. Direct Chunk_file access — spilled chunks are read through the
#      Buffer_pool (pinning, eviction, prefetch coalescing); a raw
#      Chunk_file.read outside lib/storage would bypass all of it.
#      (Chunk_file.ser_chunk_size is a pure size computation with no
#      I/O and is exempt — the bench metrics report it.)
#   4. Table.to_rows outside lib/exec and lib/storage — it copies every
#      chunk of a table into one flat array, defeating both morsel
#      pipelining and out-of-core execution on intermediates; consumers
#      stream through Table.iter / iter_chunks instead.
#   5. Telemetry ring-buffer mutation (ring_push / ring_snapshot)
#      outside lib/obs — the lock-striped flight ring's striping and
#      overwrite-oldest invariants live entirely in Telemetry; everyone
#      else goes through Telemetry.complete / Telemetry.snapshot.
#   6. Columnar field constructors (CInt/CFloat/CBool/CStr/CGen) or
#      Chunk layout constructors (Chunk.Rows / Chunk.Cols) outside
#      lib/storage — the columnar invariants (dummy values in NULL
#      slots, shared dictionaries, validity-bitset collapse) live in
#      Columnar.of_rows/of_parts; building or matching the raw
#      representation elsewhere would let a consumer skip them.
#      Everyone else uses the typed kernels (eval_cmp, take, project,
#      column_values) and Chunk.of_rows/of_columnar/columnar.
#
# Allow-list entries:
#   lib/util/scratch.ml / .mli — only *mention* Obj in documentation
#      comments explaining what Scratch replaces.
set -eu

ALLOW="lib/util/scratch.ml lib/util/scratch.mli"
TO_ROWS_ALLOW=""

status=0
for f in $(find lib bin bench \( -name '*.ml' -o -name '*.mli' \) | sort); do
  skip=0
  for a in $ALLOW; do
    [ "$f" = "$a" ] && skip=1
  done
  [ $skip -eq 1 ] && continue
  if grep -nE 'Obj\.(magic|repr|obj)' "$f"; then
    echo "lint: unsafe Obj cast in $f (see tools/lint_unsafe.sh)" >&2
    status=1
  fi
  case "$f" in
    lib/storage/*) continue ;;
  esac
  if grep -nE '\.rows\b' "$f" | grep -vE '(Naive|Qs_exec\.Naive|Chunk|Qs_storage\.Chunk)\.rows'; then
    echo "lint: direct Table .rows access in $f — use the chunk API (see tools/lint_unsafe.sh)" >&2
    status=1
  fi
  if grep -nE 'Chunk_file\.' "$f" | grep -vE 'Chunk_file\.ser_chunk_size'; then
    echo "lint: direct chunk-file access in $f — spilled chunks are read through Buffer_pool/Table (see tools/lint_unsafe.sh)" >&2
    status=1
  fi
  if grep -nE '\b(CInt|CFloat|CBool|CStr|CGen)\b|\bChunk\.(Rows|Cols)\b' "$f"; then
    echo "lint: raw columnar constructor in $f — build/consume columns through Columnar/Chunk functions (see tools/lint_unsafe.sh)" >&2
    status=1
  fi
  case "$f" in
    lib/obs/*) : ;;
    *)
      if grep -nE '\bring_(push|snapshot)\b' "$f"; then
        echo "lint: telemetry ring-buffer access in $f — use Telemetry.complete / Telemetry.snapshot (see tools/lint_unsafe.sh)" >&2
        status=1
      fi ;;
  esac
  case "$f" in
    lib/exec/*) continue ;;
  esac
  allowed=0
  for a in $TO_ROWS_ALLOW; do
    [ "$f" = "$a" ] && allowed=1
  done
  [ $allowed -eq 1 ] && continue
  if grep -nE '\bto_rows\b' "$f"; then
    echo "lint: Table.to_rows in $f flattens a table — stream with Table.iter / iter_chunks (see tools/lint_unsafe.sh)" >&2
    status=1
  fi
done
exit $status
