#!/bin/sh
# Single entry point for the repo's source checks, run both by hand and
# as part of `dune runtest` (see the rule in ./dune):
#
#   1. tools/lint_unsafe.sh   — no Obj casts, no direct Table .rows access
#   2. span-bridging lint     — every Physical operator constructor has an
#                               arm in Executor.span_label, so new operators
#                               cannot silently vanish from traces
#   3. dune build @fmt        — formatting, skipped when already running
#                               under dune (INSIDE_DUNE is set): dune
#                               cannot re-enter itself, and the runtest
#                               rule depends on the fmt alias instead.
set -eu

cd "$(dirname "$0")/.."

status=0

sh tools/lint_unsafe.sh || status=1

# --- span-bridging completeness ----------------------------------------
# The operator constructors of the physical algebra, straight from the
# type definition...
constructors=$(
  awk '/^and node =/,/^$/' lib/plan/physical.mli \
    | grep -oE '^  \| [A-Z][A-Za-z_]*' | awk '{print $2}'
)
methods=$(
  grep -oE 'type join_method = .*' lib/plan/physical.mli \
    | grep -oE '[A-Z][A-Za-z_]*' | grep -v join_method || true
)
# ...must each appear in the span_label match of the executor.
region=$(awk '/^let span_label/,/^$/' lib/exec/executor.ml)
if [ -z "$region" ]; then
  echo "lint: span_label not found in lib/exec/executor.ml" >&2
  status=1
fi
for c in $constructors $methods; do
  if ! printf '%s\n' "$region" | grep -q "Physical\.$c"; then
    echo "lint: Physical.$c has no arm in Executor.span_label — operator spans would miss it" >&2
    status=1
  fi
done

# --- span-category completeness ----------------------------------------
# Every constructor of Span.category must be listed in Span.all_categories:
# Profile.summary's per-category table and Flight's phase rollups iterate
# that list, so a forgotten constructor silently vanishes from both (it
# happened to Io/Pipeline/Breaker/Serve once — never again).
span_constructors=$(
  awk '/^type category =/,/^$/' lib/util/span.mli \
    | grep -oE '^  \| [A-Z][A-Za-z_]*' | awk '{print $2}'
)
cat_region=$(awk '/^let all_categories/,/^$/' lib/util/span.ml)
if [ -z "$cat_region" ]; then
  echo "lint: all_categories not found in lib/util/span.ml" >&2
  status=1
fi
for c in $span_constructors; do
  if ! printf '%s\n' "$cat_region" | grep -qE "\b$c\b"; then
    echo "lint: Span.$c is missing from Span.all_categories — profiles and flight rollups would drop it" >&2
    status=1
  fi
done

# --- bench baseline drift ----------------------------------------------
# The committed BENCH_*.json dumps all come from ONE harness run
# (`bench --queries 12 --baseline-out BENCH_pr5.json --serve-out
# BENCH_pr6.json --io-out BENCH_pr7.json --pipeline-out BENCH_pr8.json
# --telemetry-out BENCH_pr9.json --metrics-out BENCH_pr10.json`, then
# BENCH_pr4.json is a copy of the regenerated BENCH_pr5.json), so
# shared entries are byte-identical across the stack and every diff —
# histograms included — runs full.
# Each later baseline is a superset: pr6 adds the "serve" entry, pr7
# the "io" buffer-pool entry, pr8 the "pipeline" engine-comparison
# entry, pr9 the "telemetry" serving entry, pr10 the "columnar"
# layout entry.
# The exe is a declared dep of the runtest rule; when running by hand it
# lives under _build.
bench_diff=tools/bench_diff/bench_diff.exe
[ -x "$bench_diff" ] || bench_diff=_build/default/tools/bench_diff/bench_diff.exe
if [ -x "$bench_diff" ] && [ -f BENCH_pr4.json ] && [ -f BENCH_pr5.json ]; then
  "$bench_diff" BENCH_pr4.json BENCH_pr5.json || {
    echo "check: BENCH_pr5.json regresses against BENCH_pr4.json" >&2
    status=1
  }
else
  echo "check: bench_diff not built — skipping baseline diff" >&2
fi
if [ -x "$bench_diff" ] && [ -f BENCH_pr5.json ] && [ -f BENCH_pr6.json ]; then
  "$bench_diff" BENCH_pr5.json BENCH_pr6.json || {
    echo "check: BENCH_pr6.json regresses against BENCH_pr5.json" >&2
    status=1
  }
fi
if [ -x "$bench_diff" ] && [ -f BENCH_pr6.json ] && [ -f BENCH_pr7.json ]; then
  "$bench_diff" BENCH_pr6.json BENCH_pr7.json || {
    echo "check: BENCH_pr7.json regresses against BENCH_pr6.json" >&2
    status=1
  }
  grep -q '"io"' BENCH_pr7.json || {
    echo "check: BENCH_pr7.json is missing the \"io\" buffer-pool entry" >&2
    status=1
  }
fi
if [ -x "$bench_diff" ] && [ -f BENCH_pr7.json ] && [ -f BENCH_pr8.json ]; then
  "$bench_diff" BENCH_pr7.json BENCH_pr8.json || {
    echo "check: BENCH_pr8.json regresses against BENCH_pr7.json" >&2
    status=1
  }
  grep -q '"pipeline"' BENCH_pr8.json || {
    echo "check: BENCH_pr8.json is missing the \"pipeline\" engine entry" >&2
    status=1
  }
fi
if [ -x "$bench_diff" ] && [ -f BENCH_pr8.json ] && [ -f BENCH_pr9.json ]; then
  "$bench_diff" BENCH_pr8.json BENCH_pr9.json || {
    echo "check: BENCH_pr9.json regresses against BENCH_pr8.json" >&2
    status=1
  }
  grep -q '"telemetry"' BENCH_pr9.json || {
    echo "check: BENCH_pr9.json is missing the \"telemetry\" serving entry" >&2
    status=1
  }
fi
if [ -x "$bench_diff" ] && [ -f BENCH_pr9.json ] && [ -f BENCH_pr10.json ]; then
  "$bench_diff" BENCH_pr9.json BENCH_pr10.json || {
    echo "check: BENCH_pr10.json regresses against BENCH_pr9.json" >&2
    status=1
  }
  grep -q '"columnar"' BENCH_pr10.json || {
    echo "check: BENCH_pr10.json is missing the \"columnar\" layout entry" >&2
    status=1
  }
fi

# --- formatting + out-of-core fuzz corpus ------------------------------
# Both already covered by `dune runtest` (which cannot re-enter dune);
# when invoked by hand, also re-run the buffer-pool suite — it replays
# the 200-query differential corpus fully out-of-core through 1- and
# 4-frame pools and checks digests against in-memory execution.
if [ -z "${INSIDE_DUNE:-}" ]; then
  dune build @fmt || {
    echo "check: dune build @fmt failed — run 'dune fmt'" >&2
    status=1
  }
  dune exec test/test_main.exe -- test bufpool || {
    echo "check: out-of-core buffer-pool suite failed" >&2
    status=1
  }
fi

exit $status
