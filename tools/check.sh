#!/bin/sh
# Single entry point for the repo's source checks, run both by hand and
# as part of `dune runtest` (see the rule in ./dune):
#
#   1. tools/lint_unsafe.sh   — no Obj casts, no direct Table .rows access
#   2. span-bridging lint     — every Physical operator constructor has an
#                               arm in Executor.span_label, so new operators
#                               cannot silently vanish from traces
#   3. dune build @fmt        — formatting, skipped when already running
#                               under dune (INSIDE_DUNE is set): dune
#                               cannot re-enter itself, and the runtest
#                               rule depends on the fmt alias instead.
set -eu

cd "$(dirname "$0")/.."

status=0

sh tools/lint_unsafe.sh || status=1

# --- span-bridging completeness ----------------------------------------
# The operator constructors of the physical algebra, straight from the
# type definition...
constructors=$(
  awk '/^and node =/,/^$/' lib/plan/physical.mli \
    | grep -oE '^  \| [A-Z][A-Za-z_]*' | awk '{print $2}'
)
methods=$(
  grep -oE 'type join_method = .*' lib/plan/physical.mli \
    | grep -oE '[A-Z][A-Za-z_]*' | grep -v join_method || true
)
# ...must each appear in the span_label match of the executor.
region=$(awk '/^let span_label/,/^$/' lib/exec/executor.ml)
if [ -z "$region" ]; then
  echo "lint: span_label not found in lib/exec/executor.ml" >&2
  status=1
fi
for c in $constructors $methods; do
  if ! printf '%s\n' "$region" | grep -q "Physical\.$c"; then
    echo "lint: Physical.$c has no arm in Executor.span_label — operator spans would miss it" >&2
    status=1
  fi
done

# --- bench baseline drift ----------------------------------------------
# The committed BENCH_*.json dumps must stay within threshold on their
# deterministic counters (queries, replans, materializations, memo hits);
# histogram means carry machine-dependent wall-clock, so cross-machine
# baselines (pr4 → pr5) are gated counters-only. pr5 → pr6 were written
# by ONE harness run (`bench --queries 12 --baseline-out BENCH_pr5.json
# --metrics-out BENCH_pr6.json` — the 12-query setting matches pr4), so
# their shared entries are byte-identical and the full diff — histograms
# included — is back on.
# The exe is a declared dep of the runtest rule; when running by hand it
# lives under _build.
bench_diff=tools/bench_diff/bench_diff.exe
[ -x "$bench_diff" ] || bench_diff=_build/default/tools/bench_diff/bench_diff.exe
if [ -x "$bench_diff" ] && [ -f BENCH_pr4.json ] && [ -f BENCH_pr5.json ]; then
  "$bench_diff" --counters-only --threshold 0.5 BENCH_pr4.json BENCH_pr5.json || {
    echo "check: BENCH_pr5.json counter-regresses against BENCH_pr4.json" >&2
    status=1
  }
else
  echo "check: bench_diff not built — skipping baseline diff" >&2
fi
if [ -x "$bench_diff" ] && [ -f BENCH_pr5.json ] && [ -f BENCH_pr6.json ]; then
  "$bench_diff" BENCH_pr5.json BENCH_pr6.json || {
    echo "check: BENCH_pr6.json regresses against BENCH_pr5.json" >&2
    status=1
  }
fi

# --- formatting --------------------------------------------------------
if [ -z "${INSIDE_DUNE:-}" ]; then
  dune build @fmt || {
    echo "check: dune build @fmt failed — run 'dune fmt'" >&2
    status=1
  }
fi

exit $status
